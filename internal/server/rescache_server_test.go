package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"repro/internal/report"
)

// postRaw submits one job with optional headers and returns the full
// response: status, headers, body.
func postRaw(t *testing.T, url string, j *Job, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(j)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, _ := http.NewRequest(http.MethodPost, url+"/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// cacheDiffSpecs covers every execution mode the cache may serve:
// scalar sort, scalar cc, packed cc, faulty, and supervised.
func cacheDiffSpecs() []*Job {
	three := 3
	return []*Job{
		{Alg: "sort", N: 16, Seed: 7},
		{Alg: "cc", N: 16, Seed: 11},
		{Alg: "cc", N: 64, Seed: 21, Packed: true},
		{Alg: "sort", N: 16, Seed: 5, Faults: 2},
		{Alg: "sort", N: 8, Seed: 9, Events: &three},
	}
}

// TestCacheHitBytesMatchFreshExecution is the tentpole differential:
// for every execution mode, a warm request answered from the result
// cache must carry bytes identical to a fresh execution on a cache-
// disabled server — identical in every simulated field (report.Same)
// and byte-identical once the declared transport marks (cached) are
// cleared.
func TestCacheHitBytesMatchFreshExecution(t *testing.T) {
	warmTS := testServer(t, Config{Workers: 2})                       // cache on (default budget)
	coldTS := testServer(t, Config{Workers: 2, ResultCacheBytes: -1}) // cache off

	for _, j := range cacheDiffSpecs() {
		j := j
		t.Run(j.Class(), func(t *testing.T) {
			// Fresh execution, no cache anywhere in the path.
			resp, fresh := postRaw(t, coldTS.URL, j, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("cold status %d: %s", resp.StatusCode, fresh)
			}
			if h := resp.Header.Get("X-Result-Cache"); h != "" {
				t.Fatalf("cache-disabled server marked X-Result-Cache: %q", h)
			}

			// First warm-server request executes and populates the cache.
			resp1, first := postRaw(t, warmTS.URL, j, nil)
			if resp1.StatusCode != http.StatusOK {
				t.Fatalf("first status %d: %s", resp1.StatusCode, first)
			}
			if h := resp1.Header.Get("X-Result-Cache"); h != "" {
				t.Fatalf("first execution marked X-Result-Cache: %q", h)
			}
			if !bytes.Equal(first, fresh) {
				t.Fatalf("first warm-server execution differs from cache-off server:\n%s\nvs\n%s", first, fresh)
			}

			// Second request must be a declared cache hit.
			resp2, hit := postRaw(t, warmTS.URL, j, nil)
			if resp2.StatusCode != http.StatusOK {
				t.Fatalf("hit status %d: %s", resp2.StatusCode, hit)
			}
			if h := resp2.Header.Get("X-Result-Cache"); h != "hit" {
				t.Fatalf("second request X-Result-Cache = %q, want \"hit\"", h)
			}
			var hitRep, freshRep report.Report
			if err := json.Unmarshal(hit, &hitRep); err != nil {
				t.Fatalf("decode hit: %v", err)
			}
			if err := json.Unmarshal(fresh, &freshRep); err != nil {
				t.Fatalf("decode fresh: %v", err)
			}
			if !hitRep.Cached || hitRep.Coalesced {
				t.Fatalf("hit report marks cached=%v coalesced=%v, want cached only", hitRep.Cached, hitRep.Coalesced)
			}
			if !hitRep.Same(&freshRep) {
				t.Fatalf("cached report differs from fresh execution:\n%s", hitRep.Diff(&freshRep))
			}
			// Byte identity modulo the declared mark: clearing Cached
			// must reproduce the fresh bytes exactly.
			hitRep.Cached = false
			if got := renderJSON(&hitRep); !bytes.Equal(got, fresh) {
				t.Fatalf("cached bytes (mark cleared) differ from fresh bytes:\n%s\nvs\n%s", got, fresh)
			}
		})
	}

	// The warm server's ledger: one miss and one hit per spec.
	snap := metricsOf(t, warmTS.URL)
	n := int64(len(cacheDiffSpecs()))
	if snap.ResultCache == nil {
		t.Fatal("metrics missing result_cache block")
	}
	if snap.ResultCache.Misses != n {
		t.Fatalf("misses %d, want %d (one per spec)", snap.ResultCache.Misses, n)
	}
	if snap.ResultCache.Hits != n {
		t.Fatalf("hits %d, want %d", snap.ResultCache.Hits, n)
	}
}

func metricsOf(t *testing.T, url string) Snapshot {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return snap
}

// TestCacheSingleflightCoalesces hammers one spec with concurrent
// submissions: exactly one execution may happen (one cache miss, one
// completed job), every other request must be answered from the
// leader's bytes (hit or coalesced), and every response must carry
// identical simulated content. Run under -race this also proves the
// flight handoff is clean.
func TestCacheSingleflightCoalesces(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, Rate: -1})
	spec := &Job{Alg: "cc", N: 64, Seed: 3, Packed: true}

	const clients = 24
	type res struct {
		mark string
		rep  report.Report
	}
	results := make([]res, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postRaw(t, ts.URL, spec, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var rep report.Report
			if err := json.Unmarshal(body, &rep); err != nil {
				t.Errorf("client %d: decode: %v", i, err)
				return
			}
			results[i] = res{mark: resp.Header.Get("X-Result-Cache"), rep: rep}
		}(i)
	}
	wg.Wait()

	executed := 0
	for i := range results {
		if results[i].mark == "" {
			executed++
		}
		if !results[i].rep.Same(&results[0].rep) {
			t.Fatalf("client %d report diverges:\n%s", i, results[i].rep.Diff(&results[0].rep))
		}
	}
	if executed != 1 {
		t.Fatalf("%d responses claim fresh execution, want exactly 1", executed)
	}

	snap := metricsOf(t, ts.URL)
	if snap.Completed != 1 {
		t.Fatalf("server completed %d jobs, want 1 (coalescing failed)", snap.Completed)
	}
	rc := snap.ResultCache
	if rc == nil || rc.Misses != 1 {
		t.Fatalf("result_cache misses = %+v, want exactly 1", rc)
	}
	if rc.Hits+rc.Coalesced != clients-1 {
		t.Fatalf("hits %d + coalesced %d, want %d followers", rc.Hits, rc.Coalesced, clients-1)
	}
}

// TestCacheDisabledExecutesEveryTime pins the opt-out: with
// ResultCacheBytes < 0 every identical submission executes, no marks
// appear, and /metrics omits the result_cache block.
func TestCacheDisabledExecutesEveryTime(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, ResultCacheBytes: -1})
	spec := &Job{Alg: "sort", N: 8, Seed: 1}
	for i := 0; i < 3; i++ {
		resp, body := postRaw(t, ts.URL, spec, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if h := resp.Header.Get("X-Result-Cache"); h != "" {
			t.Fatalf("request %d marked X-Result-Cache: %q with cache disabled", i, h)
		}
	}
	snap := metricsOf(t, ts.URL)
	if snap.Completed != 3 {
		t.Fatalf("completed %d, want 3 (every submission executes)", snap.Completed)
	}
	if snap.ResultCache != nil {
		t.Fatalf("metrics carry a result_cache block with the cache disabled: %+v", snap.ResultCache)
	}
}

// TestCacheHitWithIdempotencyKey pins the orthogonality contract: a
// keyed request served from the result cache still publishes its
// (patched) bytes under its idempotency key, so a retry of that key
// replays those exact bytes from the dedup table.
func TestCacheHitWithIdempotencyKey(t *testing.T) {
	ts := testServer(t, Config{Workers: 2})
	spec := &Job{Alg: "cc", N: 16, Seed: 4}

	// Unkeyed execution populates the cache.
	if resp, body := postRaw(t, ts.URL, spec, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run status %d: %s", resp.StatusCode, body)
	}

	// Keyed request: cache hit, marked, and published under the key.
	hdr := map[string]string{"Idempotency-Key": "orthogonal-1"}
	resp1, first := postRaw(t, ts.URL, spec, hdr)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("keyed status %d: %s", resp1.StatusCode, first)
	}
	if h := resp1.Header.Get("X-Result-Cache"); h != "hit" {
		t.Fatalf("keyed request X-Result-Cache = %q, want \"hit\"", h)
	}

	// Retry of the same key: the dedup table answers with the stored
	// bytes, verbatim, regardless of the result cache.
	resp2, retry := postRaw(t, ts.URL, spec, hdr)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry status %d: %s", resp2.StatusCode, retry)
	}
	if resp2.Header.Get("Idempotent-Replay") != "true" {
		t.Fatal("retried key was not answered from the dedup table")
	}
	if !bytes.Equal(retry, first) {
		t.Fatalf("dedup replay differs from the keyed response:\n%s\nvs\n%s", retry, first)
	}
}

// TestStreamCacheMarks submits an array containing duplicate specs:
// the stream must come back with every line ok, the duplicates marked
// cached or coalesced, and all simulated content identical.
func TestStreamCacheMarks(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, Rate: -1})
	specs := []*Job{
		{ID: "a", Alg: "cc", N: 32, Seed: 9, Packed: true},
		{ID: "b", Alg: "cc", N: 32, Seed: 9, Packed: true},
		{ID: "c", Alg: "cc", N: 32, Seed: 9, Packed: true},
	}
	body, _ := json.Marshal(specs)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var items []streamItem
	for dec.More() {
		var it streamItem
		if err := dec.Decode(&it); err != nil {
			t.Fatalf("decode stream: %v", err)
		}
		items = append(items, it)
	}
	if len(items) != len(specs) {
		t.Fatalf("%d stream lines, want %d", len(items), len(specs))
	}
	executed, served := 0, 0
	var ref *report.Report
	for _, it := range items {
		if it.Status != "ok" || it.Report == nil {
			t.Fatalf("stream line %+v not ok", it)
		}
		if it.Report.JobID == "" {
			t.Fatalf("stream line lost its job id: %+v", it.Report)
		}
		if it.Report.Cached || it.Report.Coalesced {
			served++
		} else {
			executed++
		}
		if ref == nil {
			ref = it.Report
		} else if !it.Report.Same(ref) {
			t.Fatalf("stream reports diverge:\n%s", it.Report.Diff(ref))
		}
	}
	if executed != 1 || served != 2 {
		t.Fatalf("executed %d served %d, want 1 and 2", executed, served)
	}
}
