// Package server turns the batch engine, the machine cache and the
// recovery supervisor into a long-running simulation service with a
// front door that can say "no" safely. Clients POST jobs (workload,
// network family, size, fault schedule, seed, deadline) to /jobs and
// receive the same JSON report otsim -json prints; overload is
// handled by explicit, layered degradation rather than collapse:
//
//	queue   — a bounded admission queue sheds with 429 + Retry-After
//	fairness — per-client token buckets keep one client from
//	           starving the pool (429 for the offender only)
//	breaker — a per-(alg, network, N) circuit breaker turns repeated
//	           GiveUpError/panic job classes into fast 503s that
//	           half-open on a backoff schedule
//	pool    — a bounded worker pool checks machines out of per-shape
//	           mcache shards, coalesces compatible sort jobs into
//	           core.Batch lanes, and honors per-job deadlines via
//	           context (a timed-out job's machine is returned to the
//	           cache, or dropped by the cache if mid-mutation)
//	drain   — SIGTERM stops admission, finishes the queued and
//	           in-flight jobs (supervised jobs keep their
//	           checkpoint/rollback protection), flushes results and
//	           joins every worker
//
// Simulated results are bit-identical to running the same job through
// otsim directly — same seed, same schedule, same report — including
// under concurrent submission and batch coalescing (the determinism
// tests in this package pin both).
package server

import (
	"fmt"
	"time"

	"repro/internal/rescache"
	"repro/internal/vlsi"
)

// MaxN bounds accepted problem sizes: an (N×N)-OTN holds 2N trees of
// N leaves and N² base processors, so admission itself must refuse
// sizes that would let one job exhaust the host.
const MaxN = 256

// PackedMaxN is the size bound for packed Boolean jobs. The packed
// engine holds no machine at all — a few fused duration tables plus
// O(N²/64) words of adjacency per run — so admission can afford four
// times the scalar bound.
const PackedMaxN = 1024

// Job is one simulation request, the POST /jobs body. The zero value
// of every optional field means its otsim default.
type Job struct {
	// ID is echoed back as job_id in the report (optional).
	ID string `json:"id,omitempty"`
	// Client names the submitter for per-client fairness; empty IDs
	// share one anonymous bucket.
	Client string `json:"client,omitempty"`

	// Alg is the workload: "sort" (SORT-OTN) or "cc" (connected
	// components).
	Alg string `json:"alg"`
	// Network is the family: "otn" (default) or "scaled".
	Network string `json:"network,omitempty"`
	// Model is the wire-delay model: "log" (default), "const" or
	// "linear".
	Model string `json:"model,omitempty"`
	// N is the problem size (power of two, ≤ MaxN; packed Boolean
	// jobs may go up to PackedMaxN).
	N int `json:"n"`
	// Seed drives the workload generator, exactly as otsim -seed.
	Seed uint64 `json:"seed"`

	// Packed requests the bit-packed Boolean engine for a healthy
	// "cc" job: no machine checkout, simulated results byte-identical
	// to the scalar path. Fault and supervised modes are traversal-
	// time effects the fused schedules cannot express, so combining
	// them with Packed is a validation error rather than a silent
	// fallback.
	Packed bool `json:"packed,omitempty"`

	// Faults, when positive, injects that many random dead tree edges
	// before the run (otsim -faults).
	Faults int `json:"faults,omitempty"`
	// Events, when present, runs the job under the recovery
	// supervisor with that many mid-run dead-edge arrivals (otsim
	// -schedule). Omitted means a plain run; 0 means supervised but
	// fault-free. Mutually exclusive with Faults, as in otsim.
	Events *int `json:"events,omitempty"`

	// DeadlineMS bounds the job's total latency (queue wait included)
	// in milliseconds; 0 means no deadline. Expired jobs answer 504
	// and never hold a machine.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// IdemKey is the client's idempotency key (the Idempotency-Key
	// header takes precedence). A retried submission with the same key
	// answers with the original response bytes instead of re-executing.
	IdemKey string `json:"idem_key,omitempty"`
}

// Supervised reports whether the job runs under the recovery
// supervisor.
func (j *Job) Supervised() bool { return j.Events != nil }

// Deadline returns the job's latency bound, or 0.
func (j *Job) Deadline() time.Duration {
	return time.Duration(j.DeadlineMS) * time.Millisecond
}

// Validate rejects malformed jobs before they cost anything. The
// rules mirror otsim's flag validation plus the service's size bound.
func (j *Job) Validate() error {
	switch j.Alg {
	case "sort", "cc":
	default:
		return fmt.Errorf("unknown alg %q (sort | cc)", j.Alg)
	}
	switch j.Network {
	case "", "otn", "scaled":
	default:
		return fmt.Errorf("unknown network %q (otn | scaled)", j.Network)
	}
	switch j.Model {
	case "", "log", "const", "linear":
	default:
		return fmt.Errorf("unknown model %q (log | const | linear)", j.Model)
	}
	if j.Packed {
		if j.Alg != "cc" {
			return fmt.Errorf("packed execution covers the Boolean workload family only (alg \"cc\", got %q)", j.Alg)
		}
		if j.Faults > 0 || j.Events != nil {
			return fmt.Errorf("packed execution is for healthy plain runs; fault and supervised modes take the scalar path")
		}
	}
	limit := MaxN
	if j.Packed {
		limit = PackedMaxN
	}
	if j.N < 2 || j.N > limit || j.N&(j.N-1) != 0 {
		return fmt.Errorf("n = %d must be a power of two in [2, %d]", j.N, limit)
	}
	if j.Faults < 0 {
		return fmt.Errorf("faults = %d must be non-negative", j.Faults)
	}
	if j.Events != nil && *j.Events < 0 {
		return fmt.Errorf("events = %d must be non-negative", *j.Events)
	}
	if j.Events != nil && j.Faults > 0 {
		return fmt.Errorf("events (dynamic arrivals) and faults (static plan) are separate modes; pick one")
	}
	if j.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms = %d must be non-negative", j.DeadlineMS)
	}
	return nil
}

// network returns the family with the default applied.
func (j *Job) network() string {
	if j.Network == "" {
		return "otn"
	}
	return j.Network
}

// model resolves the wire-delay model with the default applied.
func (j *Job) model() vlsi.DelayModel {
	switch j.Model {
	case "const":
		return vlsi.ConstantDelay{}
	case "linear":
		return vlsi.LinearDelay{}
	default:
		return vlsi.LogDelay{}
	}
}

// Class is the circuit-breaker and coalescing key: jobs of one class
// are interchangeable resource-wise — same machine shape, same
// workload family, same supervision mode.
func (j *Job) Class() string {
	mode := "plain"
	if j.Supervised() {
		mode = "supervised"
	} else if j.Faults > 0 {
		mode = "faulty"
	} else if j.usesPacked() {
		mode = "packed"
	}
	return fmt.Sprintf("%s/%s/%s/%d/%s", j.Alg, j.network(), j.modelName(), j.N, mode)
}

// usesPacked reports whether the job runs on the machine-free packed
// engine. Validation already pins the conjunction, but the executor
// and metrics re-check it so a hand-built Job degrades to the scalar
// path instead of mis-running.
func (j *Job) usesPacked() bool {
	return j.Packed && j.Alg == "cc" && j.Faults == 0 && !j.Supervised()
}

// modelName is the resolved model's report name key ("log", "const",
// "linear") — kept distinct from the DelayModel.Name() used in
// reports, which is the long form.
func (j *Job) modelName() string {
	if j.Model == "" {
		return "log"
	}
	return j.Model
}

// Batchable reports whether jobs of this class may share core.Batch
// lanes: plain (unsupervised, fault-free) sorts on native OTN tree
// routers. Each lane's simulated times are bit-identical to a
// dedicated run, so coalescing is invisible in the report.
func (j *Job) Batchable() bool {
	return j.Alg == "sort" && j.network() == "otn" && j.Faults == 0 && !j.Supervised()
}

// jobFingerprint is the canonical, result-determining projection of a
// Job: exactly the fields that change the simulated report, with
// defaults applied so spelled-out and defaulted specs share a key.
// Transport fields — ID, Client, IdemKey, DeadlineMS — are absent by
// construction, which is the whole point: any client submitting the
// same simulation gets the same fingerprint.
type jobFingerprint struct {
	Alg        string `json:"alg"`
	Network    string `json:"network"`
	Model      string `json:"model"`
	N          int    `json:"n"`
	Seed       uint64 `json:"seed"`
	Packed     bool   `json:"packed"`
	Faults     int    `json:"faults"`
	Supervised bool   `json:"supervised"`
	Events     int    `json:"events"`
}

// Fingerprint returns the job's result-cache key: a hash of the
// canonical-JSON projection above. Packed is included even though the
// packed engine's reports are pinned byte-identical to the scalar
// path's — the key errs on the side of never sharing bytes across
// execution engines.
func (j *Job) Fingerprint() string {
	fp := jobFingerprint{
		Alg: j.Alg, Network: j.network(), Model: j.modelName(),
		N: j.N, Seed: j.Seed, Packed: j.usesPacked(), Faults: j.Faults,
	}
	if j.Supervised() {
		fp.Supervised, fp.Events = true, *j.Events
	}
	return rescache.Key(fp)
}
