package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms/graph"
	"repro/internal/algorithms/sorting"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packed"
	"repro/internal/report"
	"repro/internal/resilience"
	"repro/internal/vlsi"
	"repro/internal/workload"
)

// otsimReport recomputes the report the otsim CLI would print for a
// job, with a fresh machine and no cache, batch engine or pool in the
// loop — an independent reference for the server's bit-identical
// determinism contract.
func otsimReport(t *testing.T, j *Job) *report.Report {
	t.Helper()
	build := func() *core.Machine {
		m, err := j.build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return m
	}
	if !j.Supervised() {
		m := build()
		if j.Faults > 0 {
			if err := m.InjectFaults(fault.Random(j.N, j.Faults, j.Seed)); err != nil {
				t.Fatalf("inject: %v", err)
			}
		}
		rng := workload.NewRNG(j.Seed)
		var elapsed vlsi.Time
		if j.Alg == "sort" {
			_, elapsed = sorting.SortOTN(m, rng.Perm(j.N), 0)
		} else {
			graph.LoadGraph(m, rng.Gnp(j.N, 2.0/float64(j.N)))
			_, elapsed = graph.ConnectedComponents(m, 0)
		}
		if err := m.Err(); err != nil {
			t.Fatalf("reference run: %v", err)
		}
		metric := vlsi.Metric{Area: m.Area(), Time: elapsed}
		rep := &report.Report{
			Alg: j.Alg, Network: j.network(), Model: j.model().Name(), N: j.N, Seed: j.Seed,
			Time: int64(elapsed), Area: int64(m.Area()), AT2: metric.AT2(),
			Faults: j.Faults, Recovered: true,
		}
		if j.Faults > 0 {
			rep.Health = report.HealthOf(m.Health())
		}
		return rep
	}

	// Supervised: healthy baseline fixes horizon + answer, second
	// machine runs under the checkpoint/rollback supervisor.
	healthy := build()
	rng := workload.NewRNG(j.Seed)
	var xs []int64
	var g *workload.Graph
	var want []int64
	var healthyT vlsi.Time
	if j.Alg == "sort" {
		xs = rng.Perm(j.N)
		want, healthyT = sorting.SortOTN(healthy, xs, 0)
	} else {
		g = rng.Gnp(j.N, 2.0/float64(j.N))
		graph.LoadGraph(healthy, g)
		want, healthyT = graph.ConnectedComponents(healthy, 0)
	}
	if err := healthy.Err(); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	m := build()
	sched := fault.RandomSchedule(j.N, *j.Events, healthyT, j.Seed)
	var prog *resilience.Program
	var out func() []int64
	var err error
	if j.Alg == "sort" {
		prog, out, err = resilience.SortProgram(m, xs)
	} else {
		prog, out, err = resilience.ComponentsProgram(m, g)
	}
	if err != nil {
		t.Fatalf("program: %v", err)
	}
	done, runErr := resilience.Run(m, sched, prog, 0, resilience.Options{})
	if runErr != nil {
		t.Fatalf("supervised reference run: %v", runErr)
	}
	correct := false
	got := out()
	if j.Alg == "sort" {
		correct = len(got) == len(want)
		for i := range got {
			correct = correct && got[i] == want[i]
		}
	} else {
		correct = graph.SamePartition(got, want)
	}
	metric := vlsi.Metric{Area: m.Area(), Time: done}
	return &report.Report{
		Alg: j.Alg, Network: j.network(), Model: j.model().Name(), N: j.N, Seed: j.Seed,
		Events: *j.Events, HealthyTime: int64(healthyT),
		Time: int64(done), Area: int64(m.Area()), AT2: metric.AT2(),
		Recovered: correct, Correct: &correct,
		Health: report.HealthOf(m.Health()),
	}
}

// postJob submits one job and decodes the 200 response.
func postJob(t *testing.T, ts *httptest.Server, j *Job) (*report.Report, []byte) {
	t.Helper()
	body, err := json.Marshal(j)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.String())
	}
	var rep report.Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	return &rep, buf.Bytes()
}

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return ts
}

// TestServerMatchesOtsim pins the contract: the /jobs response body is
// byte-for-byte the JSON otsim -json prints for the same job.
func TestServerMatchesOtsim(t *testing.T) {
	three := 3
	jobs := []*Job{
		{Alg: "sort", N: 16, Seed: 7},
		{Alg: "cc", N: 16, Seed: 11},
		{Alg: "sort", N: 16, Seed: 7, Model: "const"},
		{Alg: "sort", Network: "scaled", N: 16, Seed: 3},
		{Alg: "sort", N: 16, Seed: 5, Faults: 2},
		{Alg: "sort", N: 8, Seed: 9, Events: &three},
		{Alg: "cc", N: 8, Seed: 13, Events: &three},
		// Packed jobs: the reference below runs the scalar machine
		// program, so these three pin the tentpole contract end to
		// end — the packed engine's response bytes are exactly what
		// the scalar path would have sent.
		{Alg: "cc", N: 16, Seed: 11, Packed: true},
		{Alg: "cc", N: 64, Seed: 21, Packed: true},
		{Alg: "cc", Network: "scaled", N: 16, Seed: 11, Packed: true},
	}
	ts := testServer(t, Config{Workers: 2})
	for _, j := range jobs {
		j := j
		t.Run(j.Class(), func(t *testing.T) {
			want := otsimReport(t, j)
			got, raw := postJob(t, ts, j)
			if !got.Same(want) {
				t.Fatalf("report differs from otsim:\n%s", got.Diff(want))
			}
			wantBytes, err := want.Marshal()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if wb := strings.TrimSpace(string(wantBytes)); wb != strings.TrimSpace(string(raw)) {
				t.Fatalf("response bytes differ from otsim output:\nserver:\n%s\notsim:\n%s", raw, wb)
			}
		})
	}
}

// TestPackedLargeN pins the packed admission extension: a packed
// Boolean job at N=1024 — four times the scalar size bound — is
// accepted, served without a machine checkout, and reports exactly
// the packed engine's simulated results; /metrics counts it and its
// lane occupancy. The same N on the scalar path stays rejected, as do
// packed requests for non-Boolean or degraded runs.
func TestPackedLargeN(t *testing.T) {
	ts := testServer(t, Config{Workers: 2})
	j := &Job{Alg: "cc", N: 1024, Seed: 5, Packed: true}
	rep, _ := postJob(t, ts, j)

	eng, err := packed.EngineFor(j.N, j.config(), false)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewRNG(j.Seed).Gnp(j.N, 2.0/float64(j.N))
	_, wantT := eng.Components(g, 0)
	if rep.Time != int64(wantT) || rep.Area != int64(eng.Area()) {
		t.Fatalf("packed N=1024 report time/area (%d, %d) != engine (%d, %d)",
			rep.Time, rep.Area, wantT, eng.Area())
	}
	if !rep.Recovered || rep.Error != "" {
		t.Fatalf("packed N=1024 job unhealthy: %+v", rep)
	}

	for _, bad := range []*Job{
		{Alg: "cc", N: 1024, Seed: 5},                      // scalar path keeps the scalar bound
		{Alg: "sort", N: 16, Seed: 5, Packed: true},        // packed is Boolean-family only
		{Alg: "cc", N: 16, Faults: 1, Packed: true},        // degraded runs take the scalar path
		{Alg: "cc", N: 16, Events: new(int), Packed: true}, // supervised likewise
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("job %+v validated; want rejection", bad)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.PackedJobs != 1 {
		t.Fatalf("packed_jobs = %d, want 1", snap.PackedJobs)
	}
	if snap.PackedLaneOccup != 1.0 {
		t.Fatalf("packed_lane_occupancy = %v, want 1.0 (1024 bits fill 16 words)", snap.PackedLaneOccup)
	}
}

// TestDeterminismUnderConcurrency is satellite 3: the same
// (seed, schedule, workload) submitted concurrently — through cache
// reuse and batch coalescing — produces bit-identical metrics, and
// distinct seeds each match their own dedicated-run reference.
func TestDeterminismUnderConcurrency(t *testing.T) {
	ts := testServer(t, Config{Workers: 4, QueueCap: 64, MaxLanes: 8, Rate: -1})

	// Same job, 16 concurrent copies.
	same := &Job{Alg: "sort", N: 16, Seed: 42}
	want := otsimReport(t, same)
	var wg sync.WaitGroup
	reps := make([]*report.Report, 16)
	for i := range reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], _ = postJob(t, ts, same)
		}(i)
	}
	wg.Wait()
	for i, rep := range reps {
		if !rep.Same(want) {
			t.Fatalf("copy %d differs:\n%s", i, rep.Diff(want))
		}
	}

	// Distinct seeds racing through shared lanes: each must equal its
	// own solo reference.
	wants := make([]*report.Report, 8)
	for i := range wants {
		wants[i] = otsimReport(t, &Job{Alg: "sort", N: 16, Seed: uint64(100 + i)})
	}
	got := make([]*report.Report, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = postJob(t, ts, &Job{Alg: "sort", N: 16, Seed: uint64(100 + i)})
		}(i)
	}
	wg.Wait()
	for i := range got {
		if !got[i].Same(wants[i]) {
			t.Fatalf("seed %d differs from dedicated run:\n%s", 100+i, got[i].Diff(wants[i]))
		}
	}
}

// TestStreamSubmission pins the NDJSON array path: every line carries
// a correct, attributable report.
func TestStreamSubmission(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, QueueCap: 32, MaxLanes: 4, Rate: -1})
	var jobs []*Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, &Job{ID: fmt.Sprintf("j%d", i), Alg: "sort", N: 16, Seed: uint64(i)})
	}
	body, _ := json.Marshal(jobs)
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	seen := map[string]*report.Report{}
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var item struct {
			JobID  string         `json:"job_id"`
			Status string         `json:"status"`
			Report *report.Report `json:"report"`
		}
		if err := dec.Decode(&item); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if item.Status != "ok" || item.Report == nil {
			t.Fatalf("item %q: status %q, report %v", item.JobID, item.Status, item.Report)
		}
		seen[item.JobID] = item.Report
	}
	if len(seen) != len(jobs) {
		t.Fatalf("got %d items, want %d", len(seen), len(jobs))
	}
	for i, j := range jobs {
		want := otsimReport(t, &Job{Alg: j.Alg, N: j.N, Seed: j.Seed})
		if rep := seen[j.ID]; !rep.Same(want) {
			t.Fatalf("job %d: %s", i, rep.Diff(want))
		}
	}
}
