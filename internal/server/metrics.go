package server

import (
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/mcache"
	"repro/internal/rescache"
	"repro/internal/tree"
)

// Metrics is the server's observability surface, exported as JSON at
// /metrics. Everything the degradation ladder does is counted here:
// what was admitted, what was shed and why, how full the queue is,
// how often the breaker fired, how well the machine cache and the
// shared route-plan cache are amortizing work, and how many jobs each
// batch traversal carried.
type Metrics struct {
	mu    sync.Mutex
	start time.Time

	accepted  int64
	completed int64
	failed    int64
	panics    int64
	giveUps   int64

	shedQueueFull   int64
	shedRateLimited int64
	rejectedBreaker int64
	rejectedDrain   int64
	invalid         int64

	deadlineBeforeStart int64 // expired while queued; never held a machine
	deadlineMidRun      int64 // expired while running; result flushed late

	queueDepth int64
	inflight   int64

	laneGroups int64 // batch groups executed
	laneJobs   int64 // jobs carried by those groups
	laneMax    int64 // widest group seen

	packedJobs  int64 // jobs served by the machine-free packed engine
	packedBits  int64 // adjacency-row bits those jobs actually used
	packedSlots int64 // uint64 bit slots those rows occupied

	sessionsCreated  int64 // streamed sessions checked out
	sessionsExpired  int64 // sessions evicted by the TTL sweeper
	sessionsClosed   int64 // sessions closed by DELETE or drain
	sessionBatches   int64 // update batches applied across all sessions
	sessionUpdates   int64 // edge updates those batches carried
	shedSessionsFull int64 // session creations shed at the capacity gate

	journalErrors           int64 // WAL appends or compactions that failed
	dedupHits               int64 // keyed retries answered from stored bytes
	dedupSynthesized        int64 // dedup answers rebuilt by recovery replay
	recordsReplayed         int64 // WAL records re-executed at the last recovery
	recordsSkipped          int64 // damaged/out-of-context records skipped
	sessionsRecovered       int64 // sessions live after the last recovery
	sessionsDroppedRecovery int64 // snapshot sessions dropped at the capacity gate
	recoveryMS              int64 // wall-clock milliseconds of the last recovery
}

// NewMetrics starts the clock.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

func (m *Metrics) add(f func(*Metrics)) {
	m.mu.Lock()
	f(m)
	m.mu.Unlock()
}

// Snapshot is the /metrics JSON document.
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	Accepted   int64   `json:"accepted"`
	Completed  int64   `json:"completed"`
	Failed     int64   `json:"failed"`
	Panics     int64   `json:"panics"`
	GiveUps    int64   `json:"give_ups"`
	Throughput float64 `json:"throughput_jobs_per_sec"`

	ShedQueueFull   int64 `json:"shed_queue_full"`
	ShedRateLimited int64 `json:"shed_rate_limited"`
	RejectedBreaker int64 `json:"rejected_breaker"`
	RejectedDrain   int64 `json:"rejected_draining"`
	Invalid         int64 `json:"invalid"`

	DeadlineBeforeStart int64 `json:"deadline_before_start"`
	DeadlineMidRun      int64 `json:"deadline_mid_run"`

	QueueDepth int64 `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`
	Inflight   int64 `json:"inflight"`
	Workers    int   `json:"workers"`

	BreakerOpenClasses int   `json:"breaker_open_classes"`
	BreakerTrips       int64 `json:"breaker_trips"`

	LaneGroups   int64   `json:"lane_groups"`
	LaneJobs     int64   `json:"lane_jobs"`
	LaneMax      int64   `json:"lane_max"`
	LaneAvgOccup float64 `json:"lane_avg_occupancy"`

	// PackedJobs counts jobs served by the machine-free packed
	// engine; PackedLaneOccup is the fraction of uint64 bit slots
	// those jobs' packed adjacency rows actually used (N bits in
	// ⌈N/64⌉ words — 1.0 when every served N is a multiple of 64).
	PackedJobs      int64   `json:"packed_jobs"`
	PackedLaneOccup float64 `json:"packed_lane_occupancy"`

	// Streamed-session gauges and counters: how many sessions are
	// resident right now, lifecycle totals, and the update volume the
	// incremental engines have absorbed.
	SessionsActive   int   `json:"sessions_active"`
	SessionsCreated  int64 `json:"sessions_created"`
	SessionsExpired  int64 `json:"sessions_expired"`
	SessionsClosed   int64 `json:"sessions_closed"`
	SessionBatches   int64 `json:"session_batches"`
	SessionUpdates   int64 `json:"session_updates"`
	ShedSessionsFull int64 `json:"shed_sessions_full"`

	// ResultCache is present only when the compute-once/serve-many
	// result cache is enabled: how often identical specs were answered
	// from stored bytes or coalesced onto an in-flight leader, what the
	// byte-budgeted LRU holds, and how many batch lanes were deduplicated
	// against an identical sibling.
	ResultCache *ResultCacheSnapshot `json:"result_cache,omitempty"`

	// Durability is present only when the server journals (-journal):
	// WAL volume and fsync batching, what the last recovery replayed
	// and how long it took, and how often idempotent retries were
	// answered without re-executing.
	Durability *DurabilitySnapshot `json:"durability,omitempty"`

	MCache struct {
		Hits    int     `json:"hits"`
		Misses  int     `json:"misses"`
		Waits   int     `json:"waits"`
		Returns int     `json:"returns"`
		Drops   int     `json:"drops"`
		HitRate float64 `json:"hit_rate"`
	} `json:"mcache"`

	PlanCache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		Size    int     `json:"size"`
		HitRate float64 `json:"hit_rate"`
	} `json:"plan_cache"`
}

// ResultCacheSnapshot is the /metrics result-cache block (cache-enabled
// servers only). HitRate counts stored hits and coalesced followers
// against all lookups — both kinds were answered without executing.
type ResultCacheSnapshot struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Coalesced int64   `json:"coalesced"`
	Stores    int64   `json:"stores"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	Budget    int64   `json:"budget_bytes"`
	LaneDedup int64   `json:"lane_dedup"`
	HitRate   float64 `json:"hit_rate"`
}

// resultCache converts the cache's own stats into the /metrics block.
func resultCacheSnapshot(s rescache.Stats) *ResultCacheSnapshot {
	rc := &ResultCacheSnapshot{
		Hits: s.Hits, Misses: s.Misses, Coalesced: s.Coalesced,
		Stores: s.Stores, Evictions: s.Evictions,
		Entries: s.Entries, Bytes: s.Bytes, Budget: s.Budget,
		LaneDedup: s.LaneDedup,
	}
	if total := s.Hits + s.Coalesced + s.Misses; total > 0 {
		rc.HitRate = float64(s.Hits+s.Coalesced) / float64(total)
	}
	return rc
}

// DurabilitySnapshot is the /metrics durability block (journaling
// servers only): journal volume, fsync batching, and what the last
// crash recovery replayed.
type DurabilitySnapshot struct {
	JournalSegment  int64 `json:"journal_segment"`
	JournalSnapshot int64 `json:"journal_snapshot"`
	JournalRecords  int64 `json:"journal_records"`
	JournalBytes    int64 `json:"journal_bytes"`
	FsyncBatches    int64 `json:"fsync_batches"`
	Snapshots       int64 `json:"snapshots"`
	TailRecords     int64 `json:"tail_records"`
	TornBytes       int64 `json:"torn_bytes_dropped"`
	JournalErrors   int64 `json:"journal_errors"`

	DedupHits        int64 `json:"dedup_hits"`
	DedupSynthesized int64 `json:"dedup_synthesized"`

	RecordsReplayed   int64 `json:"records_replayed"`
	RecordsSkipped    int64 `json:"records_skipped,omitempty"`
	SessionsRecovered int64 `json:"sessions_recovered"`
	SessionsDropped   int64 `json:"sessions_dropped_recovery,omitempty"`
	RecoveryMS        int64 `json:"recovery_ms"`
}

// durability merges the journal's own stats with the server-side
// durability counters.
func (m *Metrics) durability(js journal.Stats) *DurabilitySnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &DurabilitySnapshot{
		JournalSegment: int64(js.Segment), JournalSnapshot: int64(js.Snapshot),
		JournalRecords: js.Records, JournalBytes: js.Bytes,
		FsyncBatches: js.Fsyncs, Snapshots: js.Snapshots,
		TailRecords: js.TailRecords, TornBytes: js.TornBytes,
		JournalErrors:    m.journalErrors,
		DedupHits:        m.dedupHits,
		DedupSynthesized: m.dedupSynthesized,
		RecordsReplayed:  m.recordsReplayed, RecordsSkipped: m.recordsSkipped,
		SessionsRecovered: m.sessionsRecovered, SessionsDropped: m.sessionsDroppedRecovery,
		RecoveryMS: m.recoveryMS,
	}
}

// snapshot assembles the document from the live counters plus the
// cache and breaker state.
func (m *Metrics) snapshot(queueCap, workers int, cache *mcache.Cache, br *Breaker, sessionsActive int) Snapshot {
	m.mu.Lock()
	s := Snapshot{
		UptimeSec: time.Since(m.start).Seconds(),
		Accepted:  m.accepted, Completed: m.completed, Failed: m.failed,
		Panics: m.panics, GiveUps: m.giveUps,
		ShedQueueFull: m.shedQueueFull, ShedRateLimited: m.shedRateLimited,
		RejectedBreaker: m.rejectedBreaker, RejectedDrain: m.rejectedDrain,
		Invalid:             m.invalid,
		DeadlineBeforeStart: m.deadlineBeforeStart, DeadlineMidRun: m.deadlineMidRun,
		QueueDepth: m.queueDepth, QueueCap: queueCap,
		Inflight: m.inflight, Workers: workers,
		LaneGroups: m.laneGroups, LaneJobs: m.laneJobs, LaneMax: m.laneMax,
		PackedJobs:      m.packedJobs,
		SessionsActive:  sessionsActive,
		SessionsCreated: m.sessionsCreated, SessionsExpired: m.sessionsExpired,
		SessionsClosed: m.sessionsClosed, SessionBatches: m.sessionBatches,
		SessionUpdates: m.sessionUpdates, ShedSessionsFull: m.shedSessionsFull,
	}
	if m.packedSlots > 0 {
		s.PackedLaneOccup = float64(m.packedBits) / float64(m.packedSlots)
	}
	m.mu.Unlock()
	if s.UptimeSec > 0 {
		s.Throughput = float64(s.Completed) / s.UptimeSec
	}
	if s.LaneGroups > 0 {
		s.LaneAvgOccup = float64(s.LaneJobs) / float64(s.LaneGroups)
	}
	cs := cache.Stats()
	s.MCache.Hits, s.MCache.Misses, s.MCache.Waits = cs.Hits, cs.Misses, cs.Waits
	s.MCache.Returns, s.MCache.Drops = cs.Returns, cs.Drops
	if cs.Hits+cs.Misses > 0 {
		s.MCache.HitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
	}
	pc := tree.SharedPlanCache()
	ps := pc.Stats()
	s.PlanCache.Hits, s.PlanCache.Misses, s.PlanCache.Size = ps.Hits, ps.Misses, pc.Size()
	if ps.Hits+ps.Misses > 0 {
		s.PlanCache.HitRate = float64(ps.Hits) / float64(ps.Hits+ps.Misses)
	}
	s.BreakerOpenClasses, s.BreakerTrips = br.OpenClasses()
	return s
}
