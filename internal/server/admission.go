package server

import (
	"sync"
	"time"
)

// Fairness is the per-client token-bucket layer: every client drains
// its own bucket, so a misbehaving client exhausts its own tokens and
// collects 429s while everyone else's jobs keep flowing. Buckets
// refill continuously at Rate tokens/second up to Burst.
type Fairness struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// maxClients bounds the bucket map; at the bound only buckets idle
// long enough to have refilled to full are evicted — forgetting those
// forgives nothing, while draining (actively limited) buckets survive,
// so a client churning fabricated IDs can neither erase other clients'
// state nor refresh its own burst.
const maxClients = 16384

type bucket struct {
	tokens float64
	last   time.Time
}

// NewFairness builds the layer; rate ≤ 0 disables it (every client
// always admitted).
func NewFairness(rate, burst float64, now func() time.Time) *Fairness {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &Fairness{rate: rate, burst: burst, now: now, buckets: make(map[string]*bucket)}
}

// Allow spends one token from client's bucket. When the bucket is
// empty it reports false and how long until a token accrues — the
// Retry-After the handler sends with the 429.
func (f *Fairness) Allow(client string) (bool, time.Duration) {
	if f == nil || f.rate <= 0 {
		return true, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.now()
	b := f.buckets[client]
	if b == nil {
		if len(f.buckets) >= maxClients {
			for id, old := range f.buckets {
				if old.tokens+now.Sub(old.last).Seconds()*f.rate >= f.burst {
					delete(f.buckets, id)
				}
			}
			if len(f.buckets) >= maxClients {
				// Every tracked client is mid-drain; refuse to mint
				// fresh bursts for new IDs until someone goes idle.
				return false, time.Second
			}
		}
		b = &bucket{tokens: f.burst, last: now}
		f.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * f.rate
	if b.tokens > f.burst {
		b.tokens = f.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / f.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}
