package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/resilience"
)

// Breaker is a per-job-class circuit breaker. A class (one
// (alg, network, model, N, mode) shape — see Job.Class) that keeps
// producing unrecoverable failures — the supervisor's GiveUpError, a
// panic caught by the pool, a sticky machine error — is a class the
// service should stop paying full price to fail on: after Threshold
// consecutive failures the breaker opens and the class answers fast
// 503s. After a backoff that doubles per trip (base..max) the breaker
// half-opens, letting exactly one probe job through; a probe success
// closes it, a probe failure re-opens it with a longer backoff.
type Breaker struct {
	threshold int
	base, max time.Duration
	now       func() time.Time

	mu      sync.Mutex
	classes map[string]*breakerClass
	trips   int64 // lifetime trip count, for /metrics
}

type breakerState int

const (
	stClosed breakerState = iota
	stOpen
	stHalfOpen
)

type breakerClass struct {
	state   breakerState
	fails   int       // consecutive breaker-visible failures
	trips   int       // times this class opened (drives the backoff)
	until   time.Time // open until
	probing bool      // a half-open probe is in flight
}

// NewBreaker builds a breaker; threshold ≤ 0 disables it.
func NewBreaker(threshold int, base, max time.Duration, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	if base <= 0 {
		base = time.Second
	}
	if max < base {
		max = 16 * base
	}
	return &Breaker{threshold: threshold, base: base, max: max, now: now,
		classes: make(map[string]*breakerClass)}
}

// Allow asks whether a job of class may be admitted. An open class
// reports false and the remaining open time (the 503's Retry-After);
// a class whose backoff has elapsed half-opens and admits exactly one
// probe, reported via probe so the caller can Release it should the
// job never reach Record.
func (b *Breaker) Allow(class string) (ok, probe bool, retry time.Duration) {
	if b == nil || b.threshold <= 0 {
		return true, false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.classes[class]
	if c == nil {
		return true, false, 0
	}
	switch c.state {
	case stClosed:
		return true, false, 0
	case stOpen:
		if rem := c.until.Sub(b.now()); rem > 0 {
			return false, false, rem
		}
		c.state = stHalfOpen
		c.probing = true
		return true, true, 0
	default: // half-open
		if c.probing {
			return false, false, b.base
		}
		c.probing = true
		return true, true, 0
	}
}

// Release returns an admitted probe that will never reach Record —
// shed by fairness, dropped on a full or draining queue, expired while
// waiting, or cancelled mid-run. The probe said nothing about the
// class, so the half-open slot reopens and the next job probes
// instead; without this a leaked probe would hold the class at 503
// until restart.
func (b *Breaker) Release(class string) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := b.classes[class]; c != nil && c.state == stHalfOpen {
		c.probing = false
	}
}

// Record reports a finished job of class. Only breaker-visible
// failures count (see Counts); a success closes the class and resets
// its failure run.
func (b *Breaker) Record(class string, err error) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.classes[class]
	if err == nil {
		if c != nil {
			c.state = stClosed
			c.fails = 0
			c.trips = 0
			c.probing = false
		}
		return
	}
	if c == nil {
		c = &breakerClass{}
		b.classes[class] = c
	}
	c.fails++
	c.probing = false
	if c.state == stHalfOpen || c.fails >= b.threshold {
		c.trips++
		b.trips++
		backoff := b.base << uint(c.trips-1)
		if backoff > b.max || backoff <= 0 {
			backoff = b.max
		}
		c.state = stOpen
		c.until = b.now().Add(backoff)
		c.fails = 0
	}
}

// Counts reports whether err is a breaker-visible failure: the
// recovery supervisor giving up, a caught panic, a sticky machine
// error — anything that says "this job class fails when run". Context
// cancellation (a drain interrupting a machine checkout, a dead
// deadline) says nothing about the class and is not counted. Shed and
// validation outcomes never reach the breaker at all.
func Counts(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// IsGiveUp reports whether err is the supervisor's GiveUpError — the
// canonical breaker trigger, surfaced separately in /metrics.
func IsGiveUp(err error) bool {
	var give *resilience.GiveUpError
	return errors.As(err, &give)
}

// OpenClasses returns how many classes are currently open and the
// lifetime trip count (for /metrics).
func (b *Breaker) OpenClasses() (open int, trips int64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	for _, c := range b.classes {
		if c.state == stOpen && c.until.After(now) {
			open++
		}
	}
	return open, b.trips
}
