package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/algorithms/graph"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mcache"
	"repro/internal/packed"
	"repro/internal/report"
	"repro/internal/resilience"
	"repro/internal/vlsi"
	"repro/internal/workload"
)

// SessionSpec is the POST /sessions body: it checks out a stateful
// streamed-labeling session whose graph survives between requests.
// The scalar/packed split, size bounds and mode conflicts are exactly
// the job rules (a session is a "cc" job that stays resident).
type SessionSpec struct {
	// Client names the submitter for per-client fairness.
	Client string `json:"client,omitempty"`
	// N is the vertex count (power of two; ≤ MaxN scalar, ≤ PackedMaxN
	// packed).
	N int `json:"n"`
	// Seed drives the workload generator and the update stream.
	Seed uint64 `json:"seed"`
	// Network and Model as in jobs ("otn"/"scaled"; "log"/"constant"/
	// "linear").
	Network string `json:"network,omitempty"`
	Model   string `json:"model,omitempty"`
	// Packed runs the session on the machine-free packed incremental
	// engine (healthy sessions only, same conflict rules as jobs).
	Packed bool `json:"packed,omitempty"`
	// Grid selects the pixel-image workload: N must be a perfect
	// square (side² = N), the initial graph is the 4-adjacency of a
	// random half-density image, and server-generated updates are
	// pixel flips. Otherwise the graph is the standard Gnp draw and
	// generated updates are random edge toggles.
	Grid bool `json:"grid,omitempty"`
	// Faults injects a static dead-edge plan before the initial
	// labeling (scalar sessions only).
	Faults int `json:"faults,omitempty"`
	// Events schedules that many dead-edge arrivals on the session's
	// simulated timeline (scalar sessions only): update batches and
	// fault arrivals compose on one clock, and an arrival striking
	// mid-batch rolls back and replays the pending batch.
	Events int `json:"events,omitempty"`
}

// job translates the spec into the equivalent Job for validation and
// machine-shape reuse.
func (sp *SessionSpec) job() *Job {
	j := &Job{Alg: "cc", Client: sp.Client, N: sp.N, Seed: sp.Seed,
		Network: sp.Network, Model: sp.Model, Packed: sp.Packed, Faults: sp.Faults}
	if sp.Events > 0 {
		j.Events = &sp.Events
	}
	return j
}

// Validate applies the job rules plus the grid shape constraint.
func (sp *SessionSpec) Validate() error {
	if err := sp.job().Validate(); err != nil {
		return err
	}
	if sp.Grid && gridSide(sp.N) < 0 {
		return fmt.Errorf("grid sessions need a square n (side² = n), got n = %d", sp.N)
	}
	return nil
}

// gridSide returns the integer square root of n, or -1 when n is not
// a perfect square.
func gridSide(n int) int {
	for s := 1; s*s <= n; s++ {
		if s*s == n {
			return s
		}
	}
	return -1
}

// Session is one resident streamed-labeling computation. Everything
// past lock is guarded by it: batches against one session are
// serialized, sessions against each other are independent.
type Session struct {
	id      string
	spec    *SessionSpec
	created time.Time

	lock     sync.Mutex
	lastUsed time.Time

	// Exactly one engine is non-nil.
	pinc *packed.Incremental
	sinc *graph.Incremental
	m    *core.Machine
	key  mcache.Key

	// Update generation state: the RNG that continues the stream, the
	// generator's shadow graph (non-grid) or the pixel image (grid).
	stream *workload.Graph
	img    *workload.Image
	rng    *workload.RNG

	// Fault-arrival composition: the session-wide schedule (times on
	// the session clock) and how many of its events finished batches
	// have consumed.
	sched  *fault.Schedule
	cursor int

	clock   vlsi.Time
	area    vlsi.Area
	batches int
	updates int
	failed  error
	closed  bool

	// history records every applied update request, in order, for
	// fault-bearing sessions only: their machine health ledger is
	// observable in reports, so snapshot compaction preserves the full
	// input stream and recovery replays it from origin.
	history []*updateRequest
}

// sessionTable is the server's session registry. reserved counts
// creations that passed the capacity gate but have not been inserted
// yet, so concurrent creates cannot overshoot MaxSessions.
type sessionTable struct {
	mu       sync.Mutex
	byID     map[string]*Session
	seq      uint64
	reserved int
}

// releaseSession closes the session and returns its machine to the
// session cache (which drops errored or fault-mutated machines on its
// own).
func (s *Server) releaseSession(sess *Session) {
	sess.lock.Lock()
	m := sess.m
	sess.m = nil
	sess.closed = true
	sess.lock.Unlock()
	if m != nil {
		s.scache.Return(sess.key, m)
	}
}

func (s *Server) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

// SessionCount returns the number of live sessions (metrics gauge).
func (s *Server) SessionCount() int {
	s.sess.mu.Lock()
	defer s.sess.mu.Unlock()
	return len(s.sess.byID)
}

// handleSessions is POST /sessions: check out a session, run the
// initial labeling and answer with the batch-0 report.
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeShed(w, http.StatusMethodNotAllowed, "invalid", "POST only", "", 0)
		return
	}
	if s.pool.Draining() {
		s.metrics.add(func(m *Metrics) { m.rejectedDrain++ })
		writeShed(w, http.StatusServiceUnavailable, "draining", "server is draining", "", time.Second)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeShed(w, http.StatusBadRequest, "invalid", err.Error(), "", 0)
		return
	}
	var spec SessionSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		s.metrics.add(func(m *Metrics) { m.invalid++ })
		writeShed(w, http.StatusBadRequest, "invalid", err.Error(), "", 0)
		return
	}
	if err := spec.Validate(); err != nil {
		s.metrics.add(func(m *Metrics) { m.invalid++ })
		writeShed(w, http.StatusBadRequest, "invalid", err.Error(), "", 0)
		return
	}
	if spec.Client == "" {
		spec.Client = r.Header.Get("X-Client-ID")
	}
	key := idemKey(r, "")
	if key != "" {
		e, leader := s.claimIdem(r, key)
		if e != nil {
			s.writeStored(w, e)
			return
		}
		if !leader {
			writeShed(w, http.StatusGatewayTimeout, "deadline", "deadline exceeded", "", 0)
			return
		}
	}
	if ok, retry := s.fairness.Allow(spec.Client); !ok {
		s.metrics.add(func(m *Metrics) { m.shedRateLimited++ })
		s.dedup.abort(key)
		writeShed(w, http.StatusTooManyRequests, "rate_limited",
			fmt.Sprintf("client %q over rate", spec.Client), "", retry)
		return
	}

	s.sess.mu.Lock()
	if len(s.sess.byID)+s.sess.reserved >= s.cfg.MaxSessions {
		s.sess.mu.Unlock()
		s.metrics.add(func(m *Metrics) { m.shedSessionsFull++ })
		s.dedup.abort(key)
		writeShed(w, http.StatusTooManyRequests, "sessions_full",
			fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions), "", s.retryAfterFull())
		return
	}
	s.sess.reserved++
	s.sess.seq++
	id := fmt.Sprintf("s-%d", s.sess.seq)
	s.sess.mu.Unlock()

	s.sessInflight.Add(1)
	defer s.sessInflight.Done()

	// Intent first: the create is durable before it executes, so a
	// crash mid-build either lost an unacknowledged attempt (replay
	// re-creates it) or nothing at all.
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	if err := s.journalRecord(&walRecord{T: "create", SID: id, Key: key, Spec: &spec}); err != nil {
		s.sess.mu.Lock()
		s.sess.reserved--
		s.sess.mu.Unlock()
		s.dedup.abort(key)
		writeShed(w, http.StatusInternalServerError, "failed", err.Error(), "", 0)
		return
	}

	sess, rep, status, msg := s.createSession(r.Context(), id, &spec)
	s.sess.mu.Lock()
	s.sess.reserved--
	if sess != nil {
		s.sess.byID[id] = sess
	}
	s.sess.mu.Unlock()
	if sess == nil {
		// Journaled intent without a session: creation fails the same
		// way on replay, so recovery skips it; the key is released so a
		// retry gets a real attempt.
		s.dedup.abort(key)
		writeShed(w, status, "failed", msg, "", 0)
		return
	}
	s.metrics.add(func(m *Metrics) { m.sessionsCreated++ })
	out := renderJSON(rep)
	if key != "" {
		s.journalRecord(&walRecord{T: "result", Key: key, Status: http.StatusOK, Body: out})
		s.dedup.finish(key, http.StatusOK, out, false)
	}
	writeRendered(w, http.StatusOK, out)
}

// createSession builds the session's workload and engine and runs the
// initial labeling. On failure the machine (if any) is dropped back to
// the cache.
func (s *Server) createSession(ctx context.Context, id string, spec *SessionSpec) (*Session, *report.Report, int, string) {
	j := spec.job()
	rng := workload.NewRNG(spec.Seed)
	var g *workload.Graph
	var img *workload.Image
	if spec.Grid {
		side := gridSide(spec.N)
		img = rng.RandomImage(side, side, 0.5)
		g = img.Graph()
	} else {
		g = rng.Gnp(spec.N, 2.0/float64(spec.N))
	}

	now := s.now()
	sess := &Session{
		id: id, spec: spec, created: now, lastUsed: now,
		img: img, rng: rng, key: j.key(),
	}
	if !spec.Grid {
		sess.stream = g.Clone()
	}

	if spec.Packed {
		eng, err := packed.EngineFor(spec.N, j.config(), j.network() == "scaled")
		if err != nil {
			return nil, nil, http.StatusInternalServerError, err.Error()
		}
		var t0 vlsi.Time
		sess.pinc, t0 = packed.NewIncremental(eng, g, 0)
		sess.clock = t0
		sess.area = eng.Area()
		return sess, s.sessionReport(sess, 0, t0, graph.BatchStats{}, nil, 0), 0, ""
	}

	m, err := s.scache.CheckoutContext(ctx, sess.key, j.build)
	if err != nil {
		return nil, nil, http.StatusInternalServerError, err.Error()
	}
	if spec.Faults > 0 {
		if err := m.InjectFaults(fault.Random(spec.N, spec.Faults, spec.Seed)); err != nil {
			s.scache.Return(sess.key, m)
			return nil, nil, http.StatusInternalServerError, err.Error()
		}
	}
	var t0 vlsi.Time
	sess.sinc, t0 = graph.NewIncremental(m, g, 0)
	if err := m.Err(); err != nil {
		s.scache.Return(sess.key, m)
		return nil, nil, http.StatusInternalServerError, err.Error()
	}
	sess.m = m
	sess.clock = t0
	sess.area = m.Area()
	if spec.Events > 0 {
		// Arrivals land across the update phase: a window of eight
		// initial-labeling durations starting at the checkout clock.
		base := fault.RandomSchedule(spec.N, spec.Events, 8*t0, spec.Seed)
		sess.sched = fault.NewSchedule(base.Seed)
		for _, e := range base.Events {
			sess.sched.Add(e.At+t0, e.Site)
		}
		sess.sched.Sort()
	}
	return sess, s.sessionReport(sess, 0, t0, graph.BatchStats{}, nil, 0), 0, ""
}

// sessionReport builds the shared-schema report for batch b (0 = the
// checkout/initial labeling): Time is the batch's simulated duration,
// HealthyTime the session clock after it, Events the arrivals
// delivered during it.
func (s *Server) sessionReport(sess *Session, batch int, dur vlsi.Time, st graph.BatchStats, runErr error, delivered int) *report.Report {
	spec := sess.spec
	j := spec.job()
	metric := vlsi.Metric{Area: sess.area, Time: dur}
	rep := &report.Report{
		Alg: "cc", Network: j.network(), Model: j.model().Name(), N: spec.N, Seed: spec.Seed,
		Time: int64(dur), Area: int64(sess.area), AT2: metric.AT2(),
		HealthyTime: int64(sess.clock),
		Faults:      spec.Faults,
		Events:      delivered,
		Recovered:   runErr == nil,
		SessionID:   sess.id,
		Batch:       batch,
		Updates:     st.Updates,
		Affected:    st.Affected,
		Components:  distinctLabels(sess.labels()),
	}
	if sess.m != nil && (spec.Faults > 0 || spec.Events > 0) {
		rep.Health = report.HealthOf(sess.m.Health())
	}
	if runErr != nil {
		rep.Error = runErr.Error()
	}
	return rep
}

// labels returns the committed labels of whichever engine is live.
func (sess *Session) labels() []int64 {
	if sess.pinc != nil {
		return sess.pinc.Labels()
	}
	return sess.sinc.Labels()
}

func distinctLabels(labels []int64) int {
	seen := make(map[int64]bool, len(labels))
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

// updateRequest is the POST /sessions/{id}/updates body: either an
// explicit update list or a server-generated batch of count updates
// (pixel flips on grid sessions, random edge toggles otherwise).
type updateRequest struct {
	Updates []updateSpec `json:"updates,omitempty"`
	Count   int          `json:"count,omitempty"`
}

type updateSpec struct {
	U   int  `json:"u"`
	V   int  `json:"v"`
	Add bool `json:"add"`
}

// handleSession routes /sessions/{id} (GET info, DELETE close) and
// /sessions/{id}/updates (POST one batch).
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeShed(w, http.StatusNotFound, "invalid", "missing session id", "", 0)
		return
	}
	sess := s.lookupSession(id)
	if sess == nil {
		writeShed(w, http.StatusNotFound, "invalid", fmt.Sprintf("no session %q", id), "", 0)
		return
	}

	switch {
	case sub == "" && r.Method == http.MethodGet:
		s.writeSessionInfo(w, sess)
	case sub == "" && r.Method == http.MethodDelete:
		s.handleDelete(w, r, sess)
	case sub == "updates" && r.Method == http.MethodPost:
		s.handleUpdates(w, r, sess)
	default:
		writeShed(w, http.StatusMethodNotAllowed, "invalid",
			"GET|DELETE /sessions/{id} or POST /sessions/{id}/updates", "", 0)
	}
}

// handleDelete closes a session, journaling the intent first so
// recovery never resurrects a closed session.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, sess *Session) {
	key := idemKey(r, "")
	if key != "" {
		e, leader := s.claimIdem(r, key)
		if e != nil {
			s.writeStored(w, e)
			return
		}
		if !leader {
			writeShed(w, http.StatusGatewayTimeout, "deadline", "deadline exceeded", "", 0)
			return
		}
	}
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	if err := s.journalRecord(&walRecord{T: "delete", SID: sess.id, Key: key}); err != nil {
		s.dedup.abort(key)
		writeShed(w, http.StatusInternalServerError, "failed", err.Error(), "", 0)
		return
	}
	s.sess.mu.Lock()
	delete(s.sess.byID, sess.id)
	s.sess.mu.Unlock()
	s.releaseSession(sess)
	s.metrics.add(func(m *Metrics) { m.sessionsClosed++ })
	body := renderJSON(map[string]string{"status": "closed", "session_id": sess.id})
	if key != "" {
		s.journalRecord(&walRecord{T: "result", Key: key, Status: http.StatusOK, Body: body})
		s.dedup.finish(key, http.StatusOK, body, false)
	}
	writeRendered(w, http.StatusOK, body)
}

// sessionInfo is the GET /sessions/{id} body.
type sessionInfo struct {
	SessionID  string `json:"session_id"`
	N          int    `json:"n"`
	Packed     bool   `json:"packed"`
	Grid       bool   `json:"grid"`
	Clock      int64  `json:"clock_bit_times"`
	Batches    int    `json:"batches"`
	Updates    int    `json:"updates"`
	Components int    `json:"components"`
	Failed     string `json:"failed,omitempty"`
}

func (s *Server) writeSessionInfo(w http.ResponseWriter, sess *Session) {
	sess.lock.Lock()
	info := sessionInfo{
		SessionID: sess.id, N: sess.spec.N, Packed: sess.spec.Packed, Grid: sess.spec.Grid,
		Clock: int64(sess.clock), Batches: sess.batches, Updates: sess.updates,
		Components: distinctLabels(sess.labels()),
	}
	if sess.failed != nil {
		info.Failed = sess.failed.Error()
	}
	sess.lock.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// validateUpdateRequest checks the batch shape against the session
// without mutating anything — validation must precede the journal
// intent so malformed requests never enter the WAL.
func validateUpdateRequest(sess *Session, req *updateRequest) error {
	if req.Count < 0 || (len(req.Updates) == 0) == (req.Count == 0) {
		return fmt.Errorf("provide exactly one of a non-empty updates list or a positive count")
	}
	if req.Count > 0 {
		return nil
	}
	if sess.img != nil {
		return fmt.Errorf("grid sessions generate their own pixel updates; use count")
	}
	for _, u := range req.Updates {
		if u.U < 0 || u.U >= sess.spec.N || u.V < 0 || u.V >= sess.spec.N || u.U == u.V {
			return fmt.Errorf("update {%d,%d} out of range for n=%d", u.U, u.V, sess.spec.N)
		}
	}
	return nil
}

// handleUpdates applies one update batch to the session and answers
// with the per-batch report. The batch is journaled before it touches
// the engine; a retried Idempotency-Key answers with the original
// response bytes verbatim.
func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request, sess *Session) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeShed(w, http.StatusBadRequest, "invalid", err.Error(), "", 0)
		return
	}
	var req updateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.metrics.add(func(m *Metrics) { m.invalid++ })
		writeShed(w, http.StatusBadRequest, "invalid", err.Error(), "", 0)
		return
	}
	if err := validateUpdateRequest(sess, &req); err != nil {
		s.metrics.add(func(m *Metrics) { m.invalid++ })
		writeShed(w, http.StatusBadRequest, "invalid", err.Error(), "", 0)
		return
	}
	key := idemKey(r, "")
	if key != "" {
		e, leader := s.claimIdem(r, key)
		if e != nil {
			s.writeStored(w, e)
			return
		}
		if !leader {
			writeShed(w, http.StatusGatewayTimeout, "deadline", "deadline exceeded", "", 0)
			return
		}
	}
	if s.pool.Draining() {
		s.metrics.add(func(m *Metrics) { m.rejectedDrain++ })
		s.dedup.abort(key)
		writeShed(w, http.StatusServiceUnavailable, "draining", "server is draining", "", time.Second)
		return
	}

	s.sessInflight.Add(1)
	defer s.sessInflight.Done()

	s.jmu.RLock()
	defer s.jmu.RUnlock()
	sess.lock.Lock()
	defer sess.lock.Unlock()
	if sess.closed {
		s.dedup.abort(key)
		writeShed(w, http.StatusGone, "invalid", "session closed", "", 0)
		return
	}
	if sess.failed != nil {
		s.dedup.abort(key)
		writeShed(w, http.StatusConflict, "failed",
			fmt.Sprintf("session failed: %v", sess.failed), "", 0)
		return
	}
	if err := s.journalRecord(&walRecord{T: "update", SID: sess.id, Key: key, Req: &req}); err != nil {
		s.dedup.abort(key)
		writeShed(w, http.StatusInternalServerError, "failed", err.Error(), "", 0)
		return
	}

	rep, status := s.applyUpdateLocked(sess, &req)
	out := renderJSON(rep)
	if key != "" {
		// Both 200 and the deterministic 500 are executed outcomes:
		// journal the bytes and publish them for retries.
		s.journalRecord(&walRecord{T: "result", Key: key, Status: status, Body: out})
		s.dedup.finish(key, status, out, false)
	}
	writeRendered(w, status, out)
}

// applyUpdateLocked materializes and applies one validated batch;
// callers hold sess.lock (and, when journaling, jmu.RLock). It is the
// single execution path shared by live traffic and recovery replay —
// which is what makes replay bit-identical to the original run.
func (s *Server) applyUpdateLocked(sess *Session, req *updateRequest) (*report.Report, int) {
	sess.lastUsed = s.now()
	if sess.faultBearing() {
		sess.history = append(sess.history, req)
	}

	// Materialize the batch.
	var batch []workload.EdgeUpdate
	if req.Count > 0 {
		if sess.img != nil {
			batch = sess.rng.PixelBatch(sess.img, req.Count)
		} else {
			batch = sess.rng.UpdateBatch(sess.stream, req.Count)
		}
	} else {
		for _, u := range req.Updates {
			batch = append(batch, workload.EdgeUpdate{U: u.U, V: u.V, Add: u.Add})
			// Keep the generator's shadow coherent with explicit edits.
			sess.stream.Adj[u.U][u.V] = u.Add
			sess.stream.Adj[u.V][u.U] = u.Add
		}
	}

	before := sess.clock
	var done vlsi.Time
	var st graph.BatchStats
	delivered := 0
	var runErr error
	switch {
	case sess.pinc != nil:
		_, done = sess.pinc.ApplyBatch(batch, before)
		st = sess.pinc.Stats()
	case sess.sched != nil && sess.cursor < len(sess.sched.Events):
		// Compose the remaining fault arrivals with this batch on the
		// session clock.
		rem := fault.NewSchedule(sess.sched.Seed)
		for _, e := range sess.sched.Events[sess.cursor:] {
			rem.Add(e.At, e.Site)
		}
		prog, out := resilience.IncrementalBatchProgram(sess.sinc, batch)
		done, runErr = resilience.Run(sess.m, rem, prog, before, resilience.Options{})
		if runErr == nil {
			out()
			st = sess.sinc.Stats()
			for sess.cursor < len(sess.sched.Events) && sess.sched.Events[sess.cursor].At <= done {
				sess.cursor++
				delivered++
			}
		}
	default:
		_, done = sess.sinc.ApplyBatch(batch, before)
		st = sess.sinc.Stats()
		runErr = sess.m.Err()
	}

	if runErr != nil {
		sess.failed = runErr
		s.metrics.add(func(m *Metrics) { m.giveUps++ })
		return s.sessionReport(sess, sess.batches+1, 0, st, runErr, delivered),
			http.StatusInternalServerError
	}
	sess.clock = done
	sess.batches++
	sess.updates += len(batch)
	s.metrics.add(func(m *Metrics) {
		m.sessionBatches++
		m.sessionUpdates += int64(len(batch))
	})
	return s.sessionReport(sess, sess.batches, done-before, st, nil, delivered), http.StatusOK
}

// waitSessions waits (bounded by done) for in-flight session
// requests to finish.
func (s *Server) waitSessions(done <-chan struct{}) {
	waited := make(chan struct{})
	go func() {
		s.sessInflight.Wait()
		close(waited)
	}()
	select {
	case <-waited:
	case <-done:
	}
}

// closeSessions releases every session; the tail of the server's
// shutdown ladder. Drain runs it AFTER the final journal compaction —
// graceful shutdown does not journal deletions, so a restart recovers
// the sessions from the snapshot.
func (s *Server) closeSessions() {
	s.sess.mu.Lock()
	all := make([]*Session, 0, len(s.sess.byID))
	for id, sess := range s.sess.byID {
		all = append(all, sess)
		delete(s.sess.byID, id)
	}
	s.sess.mu.Unlock()
	for _, sess := range all {
		s.releaseSession(sess)
		s.metrics.add(func(m *Metrics) { m.sessionsClosed++ })
	}
}
