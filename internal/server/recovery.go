package server

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"time"

	"repro/internal/algorithms/graph"
	"repro/internal/journal"
	"repro/internal/packed"
	"repro/internal/vlsi"
	"repro/internal/workload"
)

// Open assembles a started server like New and, when cfg.JournalDir is
// set, makes it crash-safe: every admitted mutation is journaled
// before it executes, and this call recovers the previous process's
// state — load the latest snapshot, re-execute the journaled tail in
// admission order through the live engines, and assert the recovered
// labels bit-identical to an uninterrupted run (the union-find oracle
// is the uninterrupted reference: CONNECT labels are canonical).
// Because the machines are deterministic, replay charges exactly the
// simulated bit-times the original run charged — recovery adds zero.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := newServer(cfg)
	if cfg.JournalDir != "" {
		jl, err := journal.Open(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		s.jl = jl
		if err := s.recover(); err != nil {
			jl.Close()
			return nil, fmt.Errorf("server: recovery: %w", err)
		}
	}
	s.startSweeper()
	return s, nil
}

// recover rebuilds service state from the journal: snapshot, then the
// record tail, then the label-identity assertion.
func (s *Server) recover() error {
	start := time.Now()
	s.recovering = true
	defer func() { s.recovering = false }()

	if blob, ok := s.jl.Snapshot(); ok {
		if err := s.restoreSnapshot(blob); err != nil {
			return err
		}
	}
	n, err := s.jl.Replay(s.replayRecord)
	if err != nil {
		return err
	}
	if err := s.verifyRecovered(); err != nil {
		return err
	}
	ms := time.Since(start).Milliseconds()
	recovered := int64(s.SessionCount())
	s.metrics.add(func(m *Metrics) {
		m.recordsReplayed = int64(n)
		m.recoveryMS = ms
		m.sessionsRecovered = recovered
	})
	return nil
}

// noteSessionID advances the id sequence past a recovered session id,
// so post-recovery creations never collide with journaled ones.
func (s *Server) noteSessionID(id string) {
	if !strings.HasPrefix(id, "s-") {
		return
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "s-"), 10, 64)
	if err != nil {
		return
	}
	s.sess.mu.Lock()
	if n > s.sess.seq {
		s.sess.seq = n
	}
	s.sess.mu.Unlock()
}

func (s *Server) restoreSnapshot(blob []byte) error {
	var snap serverSnap
	if err := json.Unmarshal(blob, &snap); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	s.sess.mu.Lock()
	if snap.Seq > s.sess.seq {
		s.sess.seq = snap.Seq
	}
	s.sess.mu.Unlock()
	s.dedup.restore(snap.Dedup)
	for _, ss := range snap.Sessions {
		if ss == nil || ss.Spec == nil {
			continue
		}
		if err := s.restoreSession(ss); err != nil {
			return fmt.Errorf("snapshot session %s: %w", ss.ID, err)
		}
	}
	return nil
}

// restoreSession rebuilds one snapshotted session: fault-bearing ones
// replay their input history from origin (the health ledger is
// observable, so replay is the only faithful reconstruction); healthy
// ones resume from compact committed state at zero simulated cost.
func (s *Server) restoreSession(ss *sessionSnap) error {
	s.noteSessionID(ss.ID)
	if s.SessionCount() >= s.cfg.MaxSessions {
		s.metrics.add(func(m *Metrics) { m.sessionsDroppedRecovery++ })
		return nil
	}

	if len(ss.History) > 0 || ss.Spec.Faults > 0 || ss.Spec.Events > 0 {
		sess, _, _, msg := s.createSession(context.Background(), ss.ID, ss.Spec)
		if sess == nil {
			return fmt.Errorf("history replay create: %s", msg)
		}
		s.insertSession(sess)
		for _, req := range ss.History {
			if req == nil {
				continue
			}
			sess.lock.Lock()
			if sess.closed || sess.failed != nil || validateUpdateRequest(sess, req) != nil {
				sess.lock.Unlock()
				continue
			}
			s.applyUpdateLocked(sess, req)
			sess.lock.Unlock()
		}
		return nil
	}

	if ss.State == nil {
		return fmt.Errorf("no state and no history")
	}
	g, err := ss.State.Graph()
	if err != nil {
		return err
	}
	// The bit-identity assertion: snapshotted labels must equal what an
	// uninterrupted run holds — the canonical (oracle) labeling of g.
	if err := ss.State.VerifyLabels(g); err != nil {
		return err
	}
	rngState, err := strconv.ParseUint(ss.RNG, 10, 64)
	if err != nil {
		return fmt.Errorf("rng state %q: %w", ss.RNG, err)
	}
	spec := ss.Spec
	j := spec.job()
	now := s.now()
	sess := &Session{
		id: ss.ID, spec: spec, created: now, lastUsed: now,
		key: j.key(), rng: workload.NewRNG(spec.Seed),
	}
	sess.rng.SetState(rngState)
	if spec.Grid {
		if ss.Img == nil {
			return fmt.Errorf("grid session without image state")
		}
		im, err := ss.Img.restore()
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(im.Graph().Adj, g.Adj) {
			return fmt.Errorf("image state disagrees with adjacency state")
		}
		sess.img = im
	} else {
		sess.stream = g.Clone()
	}
	if spec.Packed {
		eng, err := packed.EngineFor(spec.N, j.config(), j.network() == "scaled")
		if err != nil {
			return err
		}
		sess.pinc = packed.ResumeIncremental(eng, g, ss.State.Labels)
		sess.area = eng.Area()
	} else {
		m, err := s.scache.CheckoutContext(context.Background(), sess.key, j.build)
		if err != nil {
			return err
		}
		sess.sinc = graph.ResumeIncremental(m, g, ss.State.Labels)
		sess.m = m
		sess.area = m.Area()
	}
	sess.clock = vlsi.Time(ss.Clock)
	sess.batches = ss.Batches
	sess.updates = ss.Updates
	s.insertSession(sess)
	return nil
}

func (s *Server) insertSession(sess *Session) {
	s.sess.mu.Lock()
	s.sess.byID[sess.id] = sess
	s.sess.mu.Unlock()
}

func (s *Server) lookupSession(id string) *Session {
	s.sess.mu.Lock()
	defer s.sess.mu.Unlock()
	return s.sess.byID[id]
}

// replayRecord re-executes one journaled mutation. Damaged or
// out-of-context records are skipped and counted, never half-applied
// and never fatal: a record that passed its CRC but fails JSON or
// semantic checks cannot be trusted to rebuild state, but it must not
// take recovery down with it.
func (s *Server) replayRecord(payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		s.metrics.add(func(m *Metrics) { m.recordsSkipped++ })
		return nil
	}
	switch rec.T {
	case "create":
		s.replayCreate(&rec)
	case "update":
		s.replayUpdate(&rec)
	case "delete", "evict":
		s.replayDelete(&rec)
	case "job":
		// Jobs are stateless: an intent with no result record was
		// in-flight at the crash; the client never got an answer and
		// its retry re-executes.
	case "result":
		if rec.Key != "" && len(rec.Body) > 0 {
			// The executed outcome's exact bytes survive: a retried key
			// answers byte-for-byte, superseding any synthesized entry
			// built from the intent during this replay.
			s.dedup.finish(rec.Key, rec.Status, rec.Body, false)
		}
	default:
		s.metrics.add(func(m *Metrics) { m.recordsSkipped++ })
	}
	return nil
}

func (s *Server) replayCreate(rec *walRecord) {
	if rec.SID == "" || rec.Spec == nil {
		s.metrics.add(func(m *Metrics) { m.recordsSkipped++ })
		return
	}
	s.noteSessionID(rec.SID)
	if s.lookupSession(rec.SID) != nil || rec.Spec.Validate() != nil ||
		s.SessionCount() >= s.cfg.MaxSessions {
		s.metrics.add(func(m *Metrics) { m.recordsSkipped++ })
		return
	}
	sess, rep, status, msg := s.createSession(context.Background(), rec.SID, rec.Spec)
	if sess != nil {
		s.insertSession(sess)
	}
	if rec.Key == "" {
		return
	}
	// Synthesize the lost response for the retried key: the original
	// bytes were never journaled (the crash hit between the intent and
	// the result record), so the replayed report stands in, marked.
	var body []byte
	if sess != nil {
		rep.Replayed, rep.Deduped = true, true
		status = 200
		body = renderJSON(rep)
	} else {
		body = renderJSON(shedError{Error: msg, Reason: "failed"})
	}
	s.dedup.finish(rec.Key, status, body, true)
	s.metrics.add(func(m *Metrics) { m.dedupSynthesized++ })
}

func (s *Server) replayUpdate(rec *walRecord) {
	sess := s.lookupSession(rec.SID)
	if sess == nil || rec.Req == nil {
		s.metrics.add(func(m *Metrics) { m.recordsSkipped++ })
		return
	}
	sess.lock.Lock()
	if sess.closed || sess.failed != nil || validateUpdateRequest(sess, rec.Req) != nil {
		sess.lock.Unlock()
		s.metrics.add(func(m *Metrics) { m.recordsSkipped++ })
		return
	}
	rep, status := s.applyUpdateLocked(sess, rec.Req)
	sess.lock.Unlock()
	if rec.Key == "" {
		return
	}
	rep.Replayed, rep.Deduped = true, true
	s.dedup.finish(rec.Key, status, renderJSON(rep), true)
	s.metrics.add(func(m *Metrics) { m.dedupSynthesized++ })
}

func (s *Server) replayDelete(rec *walRecord) {
	sess := s.lookupSession(rec.SID)
	if sess == nil {
		return
	}
	s.sess.mu.Lock()
	delete(s.sess.byID, rec.SID)
	s.sess.mu.Unlock()
	s.releaseSession(sess)
	if rec.T == "delete" && rec.Key != "" {
		body := renderJSON(map[string]string{
			"deduped": "true", "replayed": "true",
			"session_id": rec.SID, "status": "closed",
		})
		s.dedup.finish(rec.Key, 200, body, true)
		s.metrics.add(func(m *Metrics) { m.dedupSynthesized++ })
	}
}

// verifyRecovered asserts every recovered session's labels are
// bit-identical to an uninterrupted run's: CONNECT labels are
// canonical (component minima), so the union-find oracle over the
// recovered graph IS the uninterrupted answer. A mismatch means the
// journal and the engines disagree — refusing to serve is the only
// safe response.
func (s *Server) verifyRecovered() error {
	s.sess.mu.Lock()
	sessions := make([]*Session, 0, len(s.sess.byID))
	for _, sess := range s.sess.byID {
		sessions = append(sessions, sess)
	}
	s.sess.mu.Unlock()
	for _, sess := range sessions {
		sess.lock.Lock()
		failed := sess.failed != nil || sess.closed
		var got, want []int64
		if !failed {
			got = sess.labels()
			want = workload.NewOracle(sess.graph()).Labels()
		}
		sess.lock.Unlock()
		if failed {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("session %s: recovered labels diverge from the uninterrupted reference", sess.id)
		}
	}
	return nil
}
