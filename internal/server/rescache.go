package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/report"
	"repro/internal/rescache"
)

// This file wires the compute-once/serve-many result cache
// (internal/rescache) into the job handlers. Placement in the ladder
// is deliberate: the cache is consulted AFTER draining/validation/
// breaker/fairness — so shed semantics are identical with the cache
// on or off — and BEFORE the bounded queue and machine checkout, so
// stored hits and coalesced followers never hold a worker slot or a
// machine.
//
// Orthogonality to idempotency dedup: the dedup table answers
// *retries of one client's key* with the exact bytes that client was
// first promised (its own job_id included); the result cache answers
// *any client's identical spec* with canonical bytes that each
// response re-labels with its own job_id and a cached/coalesced mark.
// A keyed request that hits the result cache still journals its
// result record and publishes its (patched) bytes under its key, so
// the two layers compose.

// flightOutcome is what a leader publishes on its flight: the
// canonical response bytes when execution succeeded, or the refusal /
// raw result followers must relay when it did not.
type flightOutcome struct {
	body []byte       // canonical bytes; non-nil iff a cacheable success
	res  result       // the executed result (error relay)
	shed *shedOutcome // set when the leader was shed after gating
}

// executeJob runs one gated job through the queue and waits for its
// result, folding every terminal state into a flightOutcome.
func (s *Server) executeJob(r *http.Request, spec *Job, probe bool) flightOutcome {
	qj, shed := s.enqueue(r, spec, probe)
	if shed != nil {
		return flightOutcome{shed: shed}
	}
	res, ok := awaitResult(qj)
	if !ok {
		// Deadline fired while we waited; give a raced delivery one
		// grace read before conceding 504.
		if res, ok = settleDeadline(qj, time.Millisecond); !ok {
			return flightOutcome{shed: &shedOutcome{
				status: http.StatusGatewayTimeout, reason: "deadline", msg: "deadline exceeded"}}
		}
	}
	fo := flightOutcome{res: res}
	if res.rep != nil && res.err == nil {
		fo.body = canonicalBody(res.rep)
	}
	return fo
}

// awaitFlight blocks a coalesced follower on its leader's flight,
// bounded by the follower's own deadline and request context.
func (s *Server) awaitFlight(r *http.Request, spec *Job, fl *rescache.Flight) (flightOutcome, bool) {
	var dl <-chan time.Time
	if d := spec.Deadline(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		dl = t.C
	}
	select {
	case <-fl.Done():
		v, _ := fl.Value()
		fo, ok := v.(flightOutcome)
		return fo, ok
	case <-dl:
		return flightOutcome{}, false
	case <-r.Context().Done():
		return flightOutcome{}, false
	}
}

// serveExecuted writes a leader's (or, cache off, any executed job's)
// outcome — exactly the response the pre-cache server wrote.
func (s *Server) serveExecuted(w http.ResponseWriter, spec *Job, key string, fo flightOutcome) {
	if fo.shed != nil {
		s.dedup.abort(key)
		writeShed(w, fo.shed.status, fo.shed.reason, fo.shed.msg, spec.ID, fo.shed.retry)
		return
	}
	if key != "" && fo.res.rep != nil {
		body := renderJSON(fo.res.rep)
		s.jmu.RLock()
		s.journalRecord(&walRecord{T: "result", Key: key, Status: http.StatusOK, Body: body})
		s.jmu.RUnlock()
		s.dedup.finish(key, http.StatusOK, body, false)
		writeRendered(w, http.StatusOK, body)
		return
	}
	s.dedup.abort(key)
	respond(w, fo.res, spec.ID)
}

// serveCachedBody answers a request from canonical cached bytes: the
// body is re-labeled with this request's job id and its cache mark,
// the X-Result-Cache header names how it was served, and a keyed
// request still journals and publishes its bytes for idempotent
// retries.
func (s *Server) serveCachedBody(w http.ResponseWriter, spec *Job, key string, body []byte, coalesced bool) {
	rendered, err := patchCachedBody(body, spec.ID, coalesced)
	if err != nil {
		// Corrupt cached bytes would be a bug; fail the request loudly
		// rather than serve garbage.
		s.dedup.abort(key)
		writeShed(w, http.StatusInternalServerError, "failed", err.Error(), spec.ID, 0)
		return
	}
	mark := "hit"
	if coalesced {
		mark = "coalesced"
	}
	w.Header().Set("X-Result-Cache", mark)
	if key != "" {
		s.jmu.RLock()
		s.journalRecord(&walRecord{T: "result", Key: key, Status: http.StatusOK, Body: rendered})
		s.jmu.RUnlock()
		s.dedup.finish(key, http.StatusOK, rendered, false)
	}
	writeRendered(w, http.StatusOK, rendered)
}

// serveFollower relays a leader's outcome to a coalesced follower.
func (s *Server) serveFollower(w http.ResponseWriter, spec *Job, key string, fo flightOutcome) {
	switch {
	case fo.body != nil:
		s.serveCachedBody(w, spec, key, fo.body, true)
	case fo.shed != nil:
		s.dedup.abort(key)
		writeShed(w, fo.shed.status, fo.shed.reason, fo.shed.msg, spec.ID, fo.shed.retry)
	default:
		s.dedup.abort(key)
		respond(w, relayResult(fo.res, spec.ID), spec.ID)
	}
}

// relayResult re-labels a leader's executed result for a follower:
// same simulated content and error, the follower's job id, and the
// coalesced mark (the follower did not execute).
func relayResult(res result, jobID string) result {
	if res.rep == nil {
		return res
	}
	rep := *res.rep
	rep.JobID = jobID
	rep.Coalesced = true
	return result{rep: &rep, err: res.err}
}

// canonicalBody renders a successful report stripped of per-request
// transport identity — job id and every serving-mode mark — so one
// stored entry can answer any client. patchCachedBody re-labels it
// per response; the round trip is byte-exact for every simulated
// field (report.Same is the pinned equivalence).
func canonicalBody(rep *report.Report) []byte {
	c := *rep
	c.JobID = ""
	c.Replayed, c.Deduped = false, false
	c.Cached, c.Coalesced = false, false
	return renderJSON(&c)
}

// patchCachedBody turns canonical cached bytes into one response's
// bytes: unmarshal, re-label, re-render with the same encoder that
// produced the original.
func patchCachedBody(body []byte, jobID string, coalesced bool) ([]byte, error) {
	var rep report.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		return nil, fmt.Errorf("result cache: stored bytes: %w", err)
	}
	rep.JobID = jobID
	if coalesced {
		rep.Coalesced = true
	} else {
		rep.Cached = true
	}
	return renderJSON(&rep), nil
}

// cachedStreamReport is patchCachedBody for the NDJSON stream, which
// embeds the report object instead of raw bytes.
func cachedStreamReport(body []byte, jobID string, coalesced bool) *report.Report {
	var rep report.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		return nil
	}
	rep.JobID = jobID
	if coalesced {
		rep.Coalesced = true
	} else {
		rep.Cached = true
	}
	return &rep
}
