package server

import (
	"context"
	"fmt"

	"repro/internal/algorithms/graph"
	"repro/internal/algorithms/sorting"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mcache"
	"repro/internal/packed"
	"repro/internal/report"
	"repro/internal/rescache"
	"repro/internal/resilience"
	"repro/internal/vlsi"
	"repro/internal/workload"
)

// Executor runs validated jobs against cached machines. It is the
// part of the server whose outputs must be bit-identical to otsim:
// the RNG draw order, fault-plan derivation and supervisor wiring
// below mirror cmd/otsim/main.go line for line.
type Executor struct {
	cache *mcache.Cache
	// resc, when set, lets RunBatch deduplicate identical specs within
	// one coalesced batch: duplicate fingerprints share a lane and the
	// lane's report is cloned per job. nil means every job gets its own
	// lane (the pre-cache behavior).
	resc *rescache.Cache
}

// NewExecutor wraps a machine cache.
func NewExecutor(c *mcache.Cache) *Executor { return &Executor{cache: c} }

// config is the machine configuration otsim builds for a size-n job.
func (j *Job) config() vlsi.Config {
	return vlsi.Config{WordBits: vlsi.WordBitsFor(j.N * j.N), Model: j.model()}
}

// key is the job's machine-cache shard.
func (j *Job) key() mcache.Key {
	if j.network() == "scaled" {
		return mcache.ScaledOTNKey(j.N, j.config())
	}
	return mcache.OTNKey(j.N, j.config())
}

// build constructs the job's machine on a cache miss.
func (j *Job) build() (*core.Machine, error) {
	if j.network() == "scaled" {
		return core.NewScaled(j.N, j.config())
	}
	return core.New(j.N, j.config())
}

// checkout acquires the job's machine under ctx (the pool's drain
// context — deadlines shed before this point, so a queued job never
// holds a machine it cannot use).
func (e *Executor) checkout(ctx context.Context, j *Job) (*core.Machine, func(), error) {
	key := j.key()
	m, err := e.cache.CheckoutContext(ctx, key, j.build)
	if err != nil {
		return nil, nil, err
	}
	return m, func() { e.cache.Return(key, m) }, nil
}

// Run executes one job solo and fills in its report. The returned
// error is the breaker-visible failure (GiveUpError, machine error);
// shed and validation failures never reach here.
func (e *Executor) Run(ctx context.Context, j *Job) (*report.Report, error) {
	if j.Supervised() {
		return e.runSupervised(ctx, j)
	}
	if j.usesPacked() {
		return e.runPacked(ctx, j)
	}
	return e.runPlain(ctx, j)
}

// runPacked serves a healthy Boolean job from the machine-free packed
// engine: no checkout, no cache pressure — the engine is a few fused
// duration tables shared process-wide, and the run touches O(N²/64)
// words of adjacency. The report is byte-identical to the scalar
// path's for the same job (same seed, same graph, same simulated time
// and area) — TestServerMatchesOtsim pins the bytes.
func (e *Executor) runPacked(ctx context.Context, j *Job) (*report.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eng, err := packed.EngineFor(j.N, j.config(), j.network() == "scaled")
	if err != nil {
		return nil, err
	}
	g := workload.NewRNG(j.Seed).Gnp(j.N, 2.0/float64(j.N))
	_, elapsed := eng.Components(g, 0)
	metric := vlsi.Metric{Area: eng.Area(), Time: elapsed}
	return &report.Report{
		Alg: j.Alg, Network: j.network(), Model: j.model().Name(), N: j.N, Seed: j.Seed,
		Time: int64(elapsed), Area: int64(eng.Area()), AT2: metric.AT2(),
		Recovered: true,
		JobID:     j.ID,
	}, nil
}

// runPlain mirrors otsim's default mode: build (or check out) the
// machine, inject the static fault plan if any, run the workload, and
// report time/area/A·T² plus the health ledger for faulty runs.
func (e *Executor) runPlain(ctx context.Context, j *Job) (*report.Report, error) {
	m, release, err := e.checkout(ctx, j)
	if err != nil {
		return nil, err
	}
	defer release()

	if j.Faults > 0 {
		if err := m.InjectFaults(fault.Random(j.N, j.Faults, j.Seed)); err != nil {
			return nil, err
		}
	}
	rng := workload.NewRNG(j.Seed)
	var elapsed vlsi.Time
	switch j.Alg {
	case "sort":
		xs := rng.Perm(j.N)
		_, elapsed = sorting.SortOTN(m, xs, 0)
	case "cc":
		g := rng.Gnp(j.N, 2.0/float64(j.N))
		graph.LoadGraph(m, g)
		_, elapsed = graph.ConnectedComponents(m, 0)
	default:
		return nil, fmt.Errorf("server: unvalidated alg %q", j.Alg)
	}
	runErr := m.Err()

	metric := vlsi.Metric{Area: m.Area(), Time: elapsed}
	rep := &report.Report{
		Alg: j.Alg, Network: j.network(), Model: j.model().Name(), N: j.N, Seed: j.Seed,
		Time: int64(elapsed), Area: int64(m.Area()), AT2: metric.AT2(),
		Faults: j.Faults, Recovered: runErr == nil,
		JobID: j.ID,
	}
	if j.Faults > 0 {
		rep.Health = report.HealthOf(m.Health())
	}
	if runErr != nil {
		rep.Error = runErr.Error()
	}
	return rep, runErr
}

// runSupervised mirrors otsim -schedule: a fault-free baseline run
// fixes the schedule horizon and the reference answer, then a second
// machine runs the job under the checkpoint/rollback supervisor with
// j.Events mid-run dead-edge arrivals. The two machines are checked
// out sequentially, never held together, so a capacity-1 cache shard
// cannot deadlock.
func (e *Executor) runSupervised(ctx context.Context, j *Job) (*report.Report, error) {
	// Baseline.
	healthy, release, err := e.checkout(ctx, j)
	if err != nil {
		return nil, err
	}
	rng := workload.NewRNG(j.Seed)
	var xs []int64
	var g *workload.Graph
	var want []int64
	var healthyT vlsi.Time
	if j.Alg == "sort" {
		xs = rng.Perm(j.N)
		want, healthyT = sorting.SortOTN(healthy, xs, 0)
	} else {
		g = rng.Gnp(j.N, 2.0/float64(j.N))
		graph.LoadGraph(healthy, g)
		want, healthyT = graph.ConnectedComponents(healthy, 0)
	}
	baseErr := healthy.Err()
	release()
	if baseErr != nil {
		return nil, baseErr
	}

	// Supervised run.
	m, release, err := e.checkout(ctx, j)
	if err != nil {
		return nil, err
	}
	defer release()
	sched := fault.RandomSchedule(j.N, *j.Events, healthyT, j.Seed)
	var prog *resilience.Program
	var out func() []int64
	if j.Alg == "sort" {
		prog, out, err = resilience.SortProgram(m, xs)
	} else {
		prog, out, err = resilience.ComponentsProgram(m, g)
	}
	if err != nil {
		return nil, err
	}
	done, runErr := resilience.Run(m, sched, prog, 0, resilience.Options{})

	correct := false
	if runErr == nil {
		got := out()
		if j.Alg == "sort" {
			correct = len(got) == len(want)
			for i := range got {
				correct = correct && got[i] == want[i]
			}
		} else {
			correct = graph.SamePartition(got, want)
		}
	}
	recovered := runErr == nil && correct

	metric := vlsi.Metric{Area: m.Area(), Time: done}
	rep := &report.Report{
		Alg: j.Alg, Network: j.network(), Model: j.model().Name(), N: j.N, Seed: j.Seed,
		Events: *j.Events, HealthyTime: int64(healthyT),
		Time: int64(done), Area: int64(m.Area()), AT2: metric.AT2(),
		Recovered: recovered, Correct: &correct,
		Health: report.HealthOf(m.Health()),
		JobID:  j.ID,
	}
	if runErr != nil {
		rep.Error = runErr.Error()
		return rep, runErr
	}
	if !correct {
		rep.Error = fmt.Sprintf("supervised %s recovered but answered wrong", j.Alg)
		return rep, fmt.Errorf("server: %s", rep.Error)
	}
	return rep, nil
}

// RunBatch coalesces compatible plain sort jobs into the lanes of one
// core.Batch: one machine checkout, one set of tree traversals, B
// results — each lane's simulated times bit-identical to a dedicated
// run (the batch engine's determinism contract). Jobs must all be
// Batchable and share a Class; the pool guarantees both.
//
// When the result cache is enabled, jobs within one batch that share a
// fingerprint also share a lane: the lane executes once and its report
// is cloned per job (JobID aside). Like batch coalescing itself, the
// dedup is invisible in the report — a duplicate's simulated content is
// bit-identical to a dedicated lane's, which is exactly what makes the
// sharing sound.
func (e *Executor) RunBatch(ctx context.Context, jobs []*Job) ([]*report.Report, error) {
	if e.resc != nil && len(jobs) > 1 {
		return e.runBatchDeduped(ctx, jobs)
	}
	return e.runBatchAll(ctx, jobs)
}

// runBatchDeduped maps each job to a unique-fingerprint lane, runs the
// unique lanes, and fans the reports back out.
func (e *Executor) runBatchDeduped(ctx context.Context, jobs []*Job) ([]*report.Report, error) {
	unique := make([]*Job, 0, len(jobs))
	slot := make(map[string]int, len(jobs))
	lane := make([]int, len(jobs))
	for i, j := range jobs {
		fp := j.Fingerprint()
		u, ok := slot[fp]
		if !ok {
			u = len(unique)
			slot[fp] = u
			unique = append(unique, j)
		}
		lane[i] = u
	}
	if len(unique) == len(jobs) {
		return e.runBatchAll(ctx, jobs)
	}
	ureps, err := e.runBatchAll(ctx, unique)
	if err != nil {
		return nil, err
	}
	reps := make([]*report.Report, len(jobs))
	for i, j := range jobs {
		r := *ureps[lane[i]]
		r.JobID = j.ID
		reps[i] = &r
	}
	e.resc.NoteLaneDedup(len(jobs) - len(unique))
	return reps, nil
}

// runBatchAll executes every job on its own lane (the pre-dedup
// RunBatch body).
func (e *Executor) runBatchAll(ctx context.Context, jobs []*Job) ([]*report.Report, error) {
	if len(jobs) == 1 {
		rep, err := e.Run(ctx, jobs[0])
		return []*report.Report{rep}, err
	}
	j0 := jobs[0]
	m, release, err := e.checkout(ctx, j0)
	if err != nil {
		return nil, err
	}
	defer release()
	bb, err := core.NewBatch(m, len(jobs))
	if err != nil {
		return nil, err
	}
	problems := make([][]int64, len(jobs))
	for p, j := range jobs {
		problems[p] = workload.NewRNG(j.Seed).Perm(j.N)
	}
	_, times := sorting.SortOTNBatch(bb, problems)
	if err := bb.Err(); err != nil {
		return nil, err
	}
	reps := make([]*report.Report, len(jobs))
	for p, j := range jobs {
		metric := vlsi.Metric{Area: m.Area(), Time: times[p]}
		reps[p] = &report.Report{
			Alg: j.Alg, Network: j.network(), Model: j.model().Name(), N: j.N, Seed: j.Seed,
			Time: int64(times[p]), Area: int64(m.Area()), AT2: metric.AT2(),
			Recovered: true, JobID: j.ID,
		}
	}
	return reps, nil
}
