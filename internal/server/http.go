package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/mcache"
	"repro/internal/report"
	"repro/internal/rescache"
)

// Config tunes the service. The zero value of every field means its
// default.
type Config struct {
	// Workers is the worker-pool width (default 4).
	Workers int
	// QueueCap bounds the admission queue (default 4 × Workers).
	QueueCap int
	// MaxLanes bounds batch coalescing (default 8; 1 disables).
	MaxLanes int
	// CacheCap bounds checked-out machines per shape shard (default
	// Workers; 0 would be unbounded, which a service never wants).
	CacheCap int
	// Rate and Burst configure per-client token buckets (defaults 50
	// jobs/sec, burst 25; Rate < 0 disables fairness).
	Rate, Burst float64
	// BreakerThreshold consecutive failures trip a job class's
	// circuit breaker (default 3; < 0 disables). BreakerBase is the
	// first open interval, doubling per trip up to BreakerMax
	// (defaults 1s and 16s).
	BreakerThreshold        int
	BreakerBase, BreakerMax time.Duration
	// MaxSessions bounds concurrently resident streamed-labeling
	// sessions (default 2 × Workers); SessionTTL evicts sessions idle
	// longer than this (default 2m). Expiry runs on the background
	// sweeper goroutine, which Drain/Close stop.
	MaxSessions int
	SessionTTL  time.Duration
	// SweepInterval paces the background sweeper (TTL eviction and
	// journal compaction triggers). Default min(SessionTTL/4, 15s),
	// floor 50ms; negative disables the goroutine (tests drive Sweep
	// directly).
	SweepInterval time.Duration
	// JournalDir enables crash-safe state: every admitted mutation is
	// written ahead to an fsynced journal in this directory, and Open
	// recovers the previous process's sessions by deterministic replay.
	// Empty disables journaling (New's behavior is then unchanged).
	JournalDir string
	// SnapshotEvery compacts the journal once its replay tail reaches
	// this many records (default 256; checked by the sweeper).
	SnapshotEvery int
	// ResultCacheBytes budgets the compute-once/serve-many result
	// cache: finished response bytes keyed by canonical spec
	// fingerprint, plus singleflight coalescing of concurrent
	// identical specs. 0 means the rescache default (64 MiB);
	// negative disables the layer entirely (every job executes).
	ResultCacheBytes int64
	// Now is the clock used by fairness, the breaker and session TTLs
	// (tests).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.Workers
	}
	if c.MaxLanes <= 0 {
		c.MaxLanes = 8
	}
	if c.CacheCap <= 0 {
		c.CacheCap = c.Workers
	}
	if c.Rate == 0 {
		c.Rate = 50
	}
	if c.Burst == 0 {
		c.Burst = 25
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerBase == 0 {
		c.BreakerBase = time.Second
	}
	if c.BreakerMax == 0 {
		c.BreakerMax = 16 * time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 2 * c.Workers
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 2 * time.Minute
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = c.SessionTTL / 4
		if c.SweepInterval > 15*time.Second {
			c.SweepInterval = 15 * time.Second
		}
		if c.SweepInterval < 50*time.Millisecond {
			c.SweepInterval = 50 * time.Millisecond
		}
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	return c
}

// Server is the simulation service: an http.Handler plus the
// admission machinery behind it.
type Server struct {
	cfg      Config
	cache    *mcache.Cache
	scache   *mcache.Cache // session machines; separate so sessions never starve job workers
	resc     *rescache.Cache
	executor *Executor
	fairness *Fairness
	breaker  *Breaker
	metrics  *Metrics
	pool     *Pool
	mux      *http.ServeMux

	sess         sessionTable
	sessInflight sync.WaitGroup

	// Durability (nil/zero when JournalDir is unset): the write-ahead
	// journal, the idempotency table, and the compaction barrier. Every
	// journaled mutation holds jmu for reading; CompactNow holds it for
	// writing, so a snapshot never races the records it must cover.
	// Lock order: jmu before sess.mu before Session.lock.
	jl         *journal.Journal
	jmu        sync.RWMutex
	dedup      *dedupTable
	recovering bool

	sweepStop chan struct{}
	sweepDone chan struct{}
	sweepOnce sync.Once
}

// New assembles a started server (workers running, admitting). It is
// Open without journaling — cfg.JournalDir must be empty (New cannot
// surface a recovery error; it panics on one).
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// newServer builds the unstarted core shared by New and Open.
func newServer(cfg Config) *Server {
	s := &Server{cfg: cfg, dedup: newDedupTable()}
	s.cache = mcache.NewWithCapacity(cfg.CacheCap)
	s.scache = mcache.NewWithCapacity(cfg.MaxSessions)
	if cfg.ResultCacheBytes >= 0 {
		s.resc = rescache.New(cfg.ResultCacheBytes)
	}
	s.executor = NewExecutor(s.cache)
	s.executor.resc = s.resc
	s.fairness = NewFairness(cfg.Rate, cfg.Burst, cfg.Now)
	s.breaker = NewBreaker(cfg.BreakerThreshold, cfg.BreakerBase, cfg.BreakerMax, cfg.Now)
	s.metrics = NewMetrics()
	s.pool = NewPool(cfg.Workers, cfg.QueueCap, cfg.MaxLanes, s.executor.RunBatch, s.breaker, s.metrics)
	s.sess.byID = make(map[string]*Session)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/sessions", s.handleSessions)
	s.mux.HandleFunc("/sessions/", s.handleSession)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain executes the shutdown ladder: stop the sweeper, drain the
// worker pool (see Pool.Drain), wait for in-flight session requests,
// compact the journal while the sessions are still live (a graceful
// restart then recovers them instantly from the snapshot — drain does
// NOT journal deletions), then release every session and close the
// journal. Returns once everything has joined or ctx expired.
func (s *Server) Drain(ctx context.Context) error {
	s.stopSweeper()
	err := s.pool.Drain(ctx)
	s.waitSessions(ctx.Done())
	if s.jl != nil {
		if cerr := s.CompactNow(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.closeSessions()
	if s.jl != nil {
		s.jl.Close()
	}
	return err
}

// Close stops the background sweeper and closes the journal without
// draining; for tests and callers that never started traffic. Safe
// after Drain (both are idempotent).
func (s *Server) Close() {
	s.stopSweeper()
	if s.jl != nil {
		s.jl.Close()
	}
}

// Metrics returns the current snapshot (also served at /metrics).
func (s *Server) Metrics() Snapshot {
	snap := s.metrics.snapshot(s.cfg.QueueCap, s.cfg.Workers, s.cache, s.breaker, s.SessionCount())
	if s.resc != nil {
		snap.ResultCache = resultCacheSnapshot(s.resc.Stats())
	}
	if s.jl != nil {
		snap.Durability = s.metrics.durability(s.jl.Stats())
	}
	return snap
}

// shedError is the JSON body of every non-200 outcome.
type shedError struct {
	Error        string `json:"error"`
	Reason       string `json:"reason"` // queue_full | rate_limited | breaker_open | draining | deadline | invalid | failed | sessions_full
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	JobID        string `json:"job_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeShed(w http.ResponseWriter, status int, reason, msg, jobID string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int64(retryAfter / time.Second)
		if retryAfter%time.Second != 0 {
			secs++ // Retry-After is integral seconds; round up
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, shedError{Error: msg, Reason: reason, JobID: jobID,
		RetryAfterMS: retryAfter.Milliseconds()})
}

// shedOutcome is one admission-ladder refusal, carried between the
// gate/enqueue helpers and the handlers (and relayed to coalesced
// followers when their leader was shed).
type shedOutcome struct {
	status int
	reason string
	msg    string
	retry  time.Duration
}

// gate runs one job through the pre-queue admission ladder: draining
// → validation → breaker → fairness. On success it returns the
// breaker-probe flag (the caller must Record or Release it); on
// refusal it returns the shed outcome for the handler to write.
// Everything after gate — result-cache lookup, coalescing, the
// bounded queue — sees only jobs the ladder already admitted, which
// is what keeps shed/breaker/fairness semantics identical with the
// cache on or off.
func (s *Server) gate(r *http.Request, spec *Job) (bool, *shedOutcome) {
	if s.pool.Draining() {
		s.metrics.add(func(m *Metrics) { m.rejectedDrain++ })
		return false, &shedOutcome{http.StatusServiceUnavailable, "draining", "server is draining", time.Second}
	}
	if err := spec.Validate(); err != nil {
		s.metrics.add(func(m *Metrics) { m.invalid++ })
		return false, &shedOutcome{http.StatusBadRequest, "invalid", err.Error(), 0}
	}
	if spec.Client == "" {
		spec.Client = r.Header.Get("X-Client-ID")
	}
	allowed, probe, retry := s.breaker.Allow(spec.Class())
	if !allowed {
		s.metrics.add(func(m *Metrics) { m.rejectedBreaker++ })
		return false, &shedOutcome{http.StatusServiceUnavailable, "breaker_open",
			fmt.Sprintf("circuit breaker open for class %s", spec.Class()), retry}
	}
	if ok, retry := s.fairness.Allow(spec.Client); !ok {
		s.releaseProbe(spec, probe)
		s.metrics.add(func(m *Metrics) { m.shedRateLimited++ })
		return false, &shedOutcome{http.StatusTooManyRequests, "rate_limited",
			fmt.Sprintf("client %q over rate", spec.Client), retry}
	}
	return probe, nil
}

// releaseProbe returns a half-open breaker probe slot when the job's
// path never reaches breaker.Record (cache hits, coalesced followers,
// pre-queue sheds): the class must be able to probe again instead of
// wedging half-open.
func (s *Server) releaseProbe(spec *Job, probe bool) {
	if probe {
		s.breaker.Release(spec.Class())
	}
}

// enqueue is the final, bounded-queue rung for a gated job: arm the
// deadline context and submit to the worker pool.
func (s *Server) enqueue(r *http.Request, spec *Job, probe bool) (*queuedJob, *shedOutcome) {
	ctx := r.Context()
	var cancel context.CancelFunc
	if d := spec.Deadline(); d > 0 {
		// The deadline context deliberately survives the handler's
		// return (WithoutCancel): the worker owns the job until
		// delivery, the buffered result slot absorbs a late flush, and
		// the worker releases the timer via settle().
		ctx, cancel = context.WithTimeout(context.WithoutCancel(ctx), d)
	}
	qj := &queuedJob{spec: spec, probe: probe, ctx: ctx, cancel: cancel, res: make(chan result, 1)}
	if err := s.pool.Submit(qj); err != nil {
		s.releaseProbe(spec, probe)
		if cancel != nil {
			cancel()
		}
		if errors.Is(err, ErrDraining) {
			s.metrics.add(func(m *Metrics) { m.rejectedDrain++ })
			return nil, &shedOutcome{http.StatusServiceUnavailable, "draining", "server is draining", time.Second}
		}
		s.metrics.add(func(m *Metrics) { m.shedQueueFull++ })
		return nil, &shedOutcome{http.StatusTooManyRequests, "queue_full", "admission queue full", s.retryAfterFull()}
	}
	return qj, nil
}

// retryAfterFull estimates when queue space will exist: one mean
// service interval. It is a hint, not a promise — clients back off
// and retry.
func (s *Server) retryAfterFull() time.Duration { return 250 * time.Millisecond }

// respond turns a delivered result into the HTTP answer: a report
// (200, even for unrecovered supervised runs — the report carries
// recovered=false and the error), or a 500 when execution produced
// nothing at all.
func respond(w http.ResponseWriter, res result, jobID string) {
	if res.rep != nil {
		writeJSON(w, http.StatusOK, res.rep)
		return
	}
	msg := "execution produced no report"
	if res.err != nil {
		msg = res.err.Error()
	}
	if errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled) {
		writeShed(w, http.StatusGatewayTimeout, "deadline", msg, jobID, 0)
		return
	}
	writeShed(w, http.StatusInternalServerError, "failed", msg, jobID, 0)
}

// handleJobs is POST /jobs: a single job object → one report; an
// array of jobs → an NDJSON stream of per-job envelopes in completion
// order (each line flushed as its simulation finishes — results
// stream while later lanes still run).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeShed(w, http.StatusMethodNotAllowed, "invalid", "POST only", "", 0)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeShed(w, http.StatusBadRequest, "invalid", err.Error(), "", 0)
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		s.handleJobStream(w, r, trimmed)
		return
	}

	var spec Job
	if err := json.Unmarshal(body, &spec); err != nil {
		s.metrics.add(func(m *Metrics) { m.invalid++ })
		writeShed(w, http.StatusBadRequest, "invalid", err.Error(), "", 0)
		return
	}
	key := idemKey(r, spec.IdemKey)
	if key != "" {
		e, leader := s.claimIdem(r, key)
		if e != nil {
			s.writeStored(w, e)
			return
		}
		if !leader {
			writeShed(w, http.StatusGatewayTimeout, "deadline", "deadline exceeded", spec.ID, 0)
			return
		}
	}
	if err := spec.Validate(); err != nil {
		s.metrics.add(func(m *Metrics) { m.invalid++ })
		s.dedup.abort(key)
		writeShed(w, http.StatusBadRequest, "invalid", err.Error(), spec.ID, 0)
		return
	}
	s.jmu.RLock()
	jerr := s.journalRecord(&walRecord{T: "job", Key: key, Job: &spec})
	s.jmu.RUnlock()
	if jerr != nil {
		s.dedup.abort(key)
		writeShed(w, http.StatusInternalServerError, "failed", jerr.Error(), spec.ID, 0)
		return
	}
	probe, shed := s.gate(r, &spec)
	if shed != nil {
		// Shed before executing: release the key so the retry gets a
		// real attempt (only executed outcomes are deduplicated).
		s.dedup.abort(key)
		writeShed(w, shed.status, shed.reason, shed.msg, spec.ID, shed.retry)
		return
	}

	// Compute-once/serve-many: after the admission ladder, before the
	// queue. A stored hit or a coalesced follower bypasses the pool —
	// and the machine cache — entirely.
	if s.resc != nil {
		fp := spec.Fingerprint()
		body, fl, leader := s.resc.Lookup(fp)
		switch {
		case body != nil:
			s.releaseProbe(&spec, probe)
			s.serveCachedBody(w, &spec, key, body, false)
			return
		case !leader:
			s.releaseProbe(&spec, probe)
			fo, ok := s.awaitFlight(r, &spec, fl)
			if !ok {
				s.dedup.abort(key)
				writeShed(w, http.StatusGatewayTimeout, "deadline", "deadline exceeded", spec.ID, 0)
				return
			}
			s.serveFollower(w, &spec, key, fo)
			return
		default:
			fo := s.executeJob(r, &spec, probe)
			s.resc.Resolve(fp, fl, fo, fo.body)
			s.serveExecuted(w, &spec, key, fo)
			return
		}
	}

	fo := s.executeJob(r, &spec, probe)
	s.serveExecuted(w, &spec, key, fo)
}

// streamItem is one NDJSON line of an array submission.
type streamItem struct {
	JobID        string         `json:"job_id,omitempty"`
	Status       string         `json:"status"` // ok | failed | shed reason
	RetryAfterMS int64          `json:"retry_after_ms,omitempty"`
	Error        string         `json:"error,omitempty"`
	Report       *report.Report `json:"report,omitempty"`
}

// handleJobStream admits every job of an array, emitting shed
// envelopes immediately and result envelopes as simulations complete.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request, body []byte) {
	var specs []*Job
	if err := json.Unmarshal(body, &specs); err != nil {
		s.metrics.add(func(m *Metrics) { m.invalid++ })
		writeShed(w, http.StatusBadRequest, "invalid", err.Error(), "", 0)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}

	type pending struct {
		qj       *queuedJob
		spec     *Job
		id       string
		fp       string           // cache fingerprint (leader only)
		fl       *rescache.Flight // flight this job leads or follows
		follower bool
	}
	shedItem := func(id string, shed *shedOutcome) streamItem {
		return streamItem{JobID: id, Status: shed.reason, Error: shed.msg,
			RetryAfterMS: shed.retry.Milliseconds()}
	}
	var admitted []pending
	for _, spec := range specs {
		if spec == nil {
			s.metrics.add(func(m *Metrics) { m.invalid++ })
			enc.Encode(streamItem{Status: "invalid", Error: "null job"})
			flush()
			continue
		}
		if spec.Validate() == nil {
			s.jmu.RLock()
			jerr := s.journalRecord(&walRecord{T: "job", Job: spec})
			s.jmu.RUnlock()
			if jerr != nil {
				enc.Encode(streamItem{JobID: spec.ID, Status: "failed", Error: jerr.Error()})
				flush()
				continue
			}
		}
		probe, shed := s.gate(r, spec)
		if shed != nil {
			enc.Encode(shedItem(spec.ID, shed))
			flush()
			continue
		}
		if s.resc != nil {
			fp := spec.Fingerprint()
			body, fl, leader := s.resc.Lookup(fp)
			switch {
			case body != nil:
				s.releaseProbe(spec, probe)
				enc.Encode(streamItem{JobID: spec.ID, Status: "ok",
					Report: cachedStreamReport(body, spec.ID, false)})
				flush()
				continue
			case !leader:
				s.releaseProbe(spec, probe)
				admitted = append(admitted, pending{spec: spec, id: spec.ID, fl: fl, follower: true})
				continue
			}
			qj, shed := s.enqueue(r, spec, probe)
			if shed != nil {
				s.resc.Resolve(fp, fl, flightOutcome{shed: shed}, nil)
				enc.Encode(shedItem(spec.ID, shed))
				flush()
				continue
			}
			admitted = append(admitted, pending{qj: qj, spec: spec, id: spec.ID, fp: fp, fl: fl})
			continue
		}
		qj, shed := s.enqueue(r, spec, probe)
		if shed != nil {
			enc.Encode(shedItem(spec.ID, shed))
			flush()
			continue
		}
		admitted = append(admitted, pending{qj: qj, spec: spec, id: spec.ID})
	}

	// Fan results into one channel so lines stream in completion
	// order, not submission order.
	type done struct {
		item streamItem
	}
	ch := make(chan done, len(admitted))
	for _, p := range admitted {
		go func(p pending) {
			if p.follower {
				fo, ok := s.awaitFlight(r, p.spec, p.fl)
				if !ok {
					ch <- done{streamItem{JobID: p.id, Status: "deadline", Error: "deadline exceeded"}}
					return
				}
				ch <- done{followerItem(p.id, fo)}
				return
			}
			res, ok := awaitResult(p.qj)
			if !ok {
				if res, ok = settleDeadline(p.qj, time.Millisecond); !ok {
					if p.fl != nil {
						s.resc.Resolve(p.fp, p.fl, flightOutcome{shed: &shedOutcome{
							status: http.StatusGatewayTimeout, reason: "deadline", msg: "deadline exceeded"}}, nil)
					}
					ch <- done{streamItem{JobID: p.id, Status: "deadline", Error: "deadline exceeded"}}
					return
				}
			}
			if p.fl != nil {
				fo := flightOutcome{res: res}
				if res.rep != nil && res.err == nil {
					fo.body = canonicalBody(res.rep)
				}
				s.resc.Resolve(p.fp, p.fl, fo, fo.body)
			}
			item := streamItem{JobID: p.id, Status: "ok", Report: res.rep}
			if res.rep == nil {
				item.Status = "failed"
				if res.err != nil {
					item.Error = res.err.Error()
				}
			}
			ch <- done{item}
		}(p)
	}
	for range admitted {
		d := <-ch
		enc.Encode(d.item)
		flush()
	}
}

// followerItem renders a coalesced follower's stream envelope from
// its leader's flight outcome.
func followerItem(id string, fo flightOutcome) streamItem {
	switch {
	case fo.body != nil:
		return streamItem{JobID: id, Status: "ok", Report: cachedStreamReport(fo.body, id, true)}
	case fo.shed != nil:
		return streamItem{JobID: id, Status: fo.shed.reason, Error: fo.shed.msg,
			RetryAfterMS: fo.shed.retry.Milliseconds()}
	default:
		res := relayResult(fo.res, id)
		item := streamItem{JobID: id, Status: "failed", Report: res.rep}
		if res.rep != nil {
			item.Status = "ok"
		}
		if res.err != nil {
			item.Error = res.err.Error()
		}
		return item
	}
}

// handleMetrics is GET /metrics: the full Snapshot as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handleHealthz reports liveness and drain state.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	code := http.StatusOK
	if s.pool.Draining() {
		state = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": state})
}
