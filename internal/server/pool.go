package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bits"
	"repro/internal/report"
)

// Sentinel admission outcomes, mapped to HTTP statuses by the
// handlers.
var (
	// ErrQueueFull is load shedding: the bounded admission queue is
	// full (429 + Retry-After).
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining is the shutdown ladder's last rung: the server no
	// longer admits work (503 + Retry-After).
	ErrDraining = errors.New("server: draining")
)

// result is what a worker delivers back to the waiting handler.
type result struct {
	rep *report.Report
	err error
}

// queuedJob is one admitted job riding the queue: its spec, its
// deadline context, and a buffered result slot (buffered so a worker
// never blocks on a handler that gave up at its deadline — the
// result is flushed into the slot and garbage-collected with it).
type queuedJob struct {
	spec   *Job
	probe  bool // admitted as a half-open breaker probe (must Record or Release)
	ctx    context.Context
	cancel context.CancelFunc // releases the deadline timer; nil when no deadline
	res    chan result
}

// settle releases the job's deadline timer once the worker is done
// with it.
func (qj *queuedJob) settle() {
	if qj.cancel != nil {
		qj.cancel()
	}
}

// Pool is the bounded worker pool: admitted jobs ride a bounded
// queue; workers pull, coalesce compatible plain sorts into
// core.Batch lanes, execute against the machine cache, feed the
// breaker, and deliver results. Exec is injectable for tests.
type Pool struct {
	queue    chan *queuedJob
	queueCap int
	workers  int
	maxLanes int

	exec    func(ctx context.Context, jobs []*Job) ([]*report.Report, error)
	breaker *Breaker
	metrics *Metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc

	admitMu  sync.RWMutex
	draining bool
	wg       sync.WaitGroup
}

// NewPool builds and starts the workers. exec runs a compatible group
// (len ≥ 1); the default is Executor.RunBatch.
func NewPool(workers, queueCap, maxLanes int, exec func(context.Context, []*Job) ([]*report.Report, error), br *Breaker, mt *Metrics) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if maxLanes < 1 {
		maxLanes = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		queue: make(chan *queuedJob, queueCap), queueCap: queueCap,
		workers: workers, maxLanes: maxLanes,
		exec: exec, breaker: br, metrics: mt,
		baseCtx: ctx, baseCancel: cancel,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit admits a job or reports why not. The caller has already
// passed validation, fairness and the breaker; this is the final,
// bounded-queue gate.
func (p *Pool) Submit(qj *queuedJob) error {
	p.admitMu.RLock()
	defer p.admitMu.RUnlock()
	if p.draining {
		return ErrDraining
	}
	select {
	case p.queue <- qj:
		p.metrics.add(func(m *Metrics) { m.accepted++; m.queueDepth++ })
		return nil
	default:
		return ErrQueueFull
	}
}

// Drain is the graceful-shutdown rung: stop admitting (Submit answers
// ErrDraining), let the workers finish every queued and in-flight job
// — supervised jobs keep their checkpoint/rollback protection to the
// end — flush all results, and join the workers. If ctx expires
// first, the pool's base context is cancelled (aborting machine-cache
// waits) and the error returned.
func (p *Pool) Drain(ctx context.Context) error {
	p.admitMu.Lock()
	if !p.draining {
		p.draining = true
		close(p.queue)
	}
	p.admitMu.Unlock()

	done := make(chan struct{})
	go func() { p.wg.Wait(); close(done) }()
	select {
	case <-done:
		p.baseCancel()
		return nil
	case <-ctx.Done():
		p.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Draining reports whether admission has stopped.
func (p *Pool) Draining() bool {
	p.admitMu.RLock()
	defer p.admitMu.RUnlock()
	return p.draining
}

// worker is the pull loop: take a job, opportunistically coalesce
// compatible batchable jobs behind it (without ever blocking), run
// the group, deliver. Exits when the queue is closed and empty.
func (p *Pool) worker() {
	defer p.wg.Done()
	for qj := range p.queue {
		p.metrics.add(func(m *Metrics) { m.queueDepth-- })
		if p.expired(qj) {
			continue
		}
		group := []*queuedJob{qj}
		var stash *queuedJob
		if qj.spec.Batchable() {
			class := qj.spec.Class()
		collect:
			for len(group) < p.maxLanes {
				select {
				case j2, ok := <-p.queue:
					if !ok {
						break collect
					}
					p.metrics.add(func(m *Metrics) { m.queueDepth-- })
					if p.expired(j2) {
						continue
					}
					if j2.spec.Batchable() && j2.spec.Class() == class {
						group = append(group, j2)
					} else {
						stash = j2
						break collect
					}
				default:
					break collect
				}
			}
		}
		p.runGroup(group)
		if stash != nil {
			p.runGroup([]*queuedJob{stash})
		}
	}
}

// expired sheds a job whose deadline passed while it was queued: it
// never holds a machine, and the handler (long gone or about to be)
// finds a deadline result in the buffered slot.
func (p *Pool) expired(qj *queuedJob) bool {
	if qj.ctx.Err() == nil {
		return false
	}
	if qj.probe {
		p.breaker.Release(qj.spec.Class())
	}
	p.metrics.add(func(m *Metrics) { m.deadlineBeforeStart++ })
	qj.res <- result{err: qj.ctx.Err()}
	qj.settle()
	return true
}

// runGroup executes one compatible group with panic containment and
// full accounting, feeds the breaker, and delivers each job's report.
func (p *Pool) runGroup(group []*queuedJob) {
	specs := make([]*Job, len(group))
	for i, qj := range group {
		specs[i] = qj.spec
	}
	p.metrics.add(func(m *Metrics) {
		m.inflight += int64(len(group))
		if len(group) > 1 {
			m.laneGroups++
			m.laneJobs += int64(len(group))
			if int64(len(group)) > m.laneMax {
				m.laneMax = int64(len(group))
			}
		}
	})
	var reps []*report.Report
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("server: panic in %s: %v", specs[0].Class(), r)
				p.metrics.add(func(m *Metrics) { m.panics++ })
			}
		}()
		reps, err = p.exec(p.baseCtx, specs)
	}()
	if Counts(err) || err == nil {
		p.breaker.Record(specs[0].Class(), err)
	} else {
		// Context cancellation (drain, dead deadline) says nothing
		// about the class: skip Record but return any probe in the
		// group so the class can probe again instead of wedging.
		for _, qj := range group {
			if qj.probe {
				p.breaker.Release(qj.spec.Class())
			}
		}
	}
	p.metrics.add(func(m *Metrics) {
		m.inflight -= int64(len(group))
		if err == nil {
			m.completed += int64(len(group))
			for _, j := range specs {
				if j.usesPacked() {
					m.packedJobs++
					m.packedBits += int64(j.N)
					m.packedSlots += int64(bits.Words(j.N) * bits.WordBits)
				}
			}
		} else {
			m.failed += int64(len(group))
			if IsGiveUp(err) {
				m.giveUps++
			}
		}
	})
	for i, qj := range group {
		var rep *report.Report
		if reps != nil && i < len(reps) {
			rep = reps[i]
		}
		if qj.ctx.Err() == context.DeadlineExceeded {
			p.metrics.add(func(m *Metrics) { m.deadlineMidRun++ })
		}
		qj.res <- result{rep: rep, err: err}
		qj.settle()
	}
}

// queueDepth exposes the live depth (metrics snapshot uses the
// counter; this is for tests).
func (p *Pool) queueDepth() int { return len(p.queue) }

// awaitResult is the handler side: wait for the worker's delivery or
// the job's deadline, whichever first.
func awaitResult(qj *queuedJob) (result, bool) {
	select {
	case r := <-qj.res:
		return r, true
	case <-qj.ctx.Done():
		return result{}, false
	}
}

// settleDeadline gives a just-expired handler one last grace read: a
// worker may have delivered in the same instant.
func settleDeadline(qj *queuedJob, grace time.Duration) (result, bool) {
	select {
	case r := <-qj.res:
		return r, true
	case <-time.After(grace):
		return result{}, false
	}
}
