// Package journal is an append-only, CRC-framed, fsync-batched
// write-ahead log with snapshot compaction — the durability substrate
// under otserve's crash recovery. The contract is the classic WAL
// one, specialised to a fully deterministic workload:
//
//   - a mutation is committed iff its record is wholly in the journal;
//     Append returns only after an fsync covers the record, so an
//     acknowledged mutation survives SIGKILL,
//   - a torn tail (the partial record a crash can leave at the end of
//     the active segment) is detected by frame length/CRC, dropped and
//     truncated on the next Open — it is never half-applied,
//   - recovery is replay: the consumer re-applies every committed
//     record, in order, against the state of the latest snapshot.
//     Because the simulated machines are deterministic, replay
//     reconstructs host state bit-for-bit instead of deserialising it,
//   - snapshot compaction bounds replay: Compact atomically publishes
//     a consumer-provided state blob (write-temp, fsync, rename) and
//     rotates to a fresh segment, so recovery replays only the records
//     since the last snapshot.
//
// Concurrent Appends batch their fsyncs (group commit): every record
// waits for a sync that covers it, but a single fsync acknowledges
// every record written before it started, so the fsync rate is bounded
// by the disk, not the request rate.
//
// On-disk layout, inside one directory:
//
//	wal-<seq>.log    segments of framed records, dense ascending seq
//	snap-<seq>.json  state snapshot taken when segment <seq> was opened
//
// Recovery loads the highest readable snapshot S and replays segments
// seq ≥ S in order. Files below S are dead and deleted lazily; a crash
// between the steps of a Compact leaves only dead files, never an
// inconsistent journal.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// magic opens every frame; a mismatch means the rest of the segment is
// not a record stream (torn or corrupt) and replay stops there.
const magic uint32 = 0x4F544A4C // "OTJL"

// headerSize is the fixed frame prefix: magic, payload length, CRC.
const headerSize = 12

// MaxRecord bounds a single record's payload. A length field above the
// bound is treated as a torn/corrupt tail rather than an allocation.
const MaxRecord = 16 << 20

// castagnoli is the CRC-32C table (the polynomial with hardware
// support on current CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame encodes one payload as magic|len|crc|payload, appended to dst.
func frame(dst, payload []byte) []byte {
	var h [headerSize]byte
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint32(h[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[8:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// parseFrame reads one frame from buf. It returns the payload, the
// total frame size consumed, and ok=false when the buffer holds no
// complete, well-formed frame at its start — the torn-tail condition.
// A parse failure is terminal for the stream: nothing after a torn or
// corrupt frame can be trusted, because record boundaries are framing.
func parseFrame(buf []byte) (payload []byte, size int, ok bool) {
	if len(buf) < headerSize {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(buf[4:])
	if n > MaxRecord || int(n) > len(buf)-headerSize {
		return nil, 0, false
	}
	payload = buf[headerSize : headerSize+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[8:]) {
		return nil, 0, false
	}
	return payload, headerSize + int(n), true
}

// scan walks a segment's bytes record by record, calling fn with each
// committed payload. It returns the clean prefix length — the offset
// of the first torn or corrupt frame, or len(buf) when the segment is
// clean — and the number of records delivered.
func scan(buf []byte, fn func(payload []byte) error) (clean int, records int, err error) {
	off := 0
	for off < len(buf) {
		payload, size, ok := parseFrame(buf[off:])
		if !ok {
			return off, records, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, records, err
			}
		}
		off += size
		records++
	}
	return off, records, nil
}

// Stats is the journal's observability surface, reported by otserve's
// /metrics durability block.
type Stats struct {
	// Segment is the active segment's sequence number; Snapshot the
	// seq of the snapshot recovery would load (0 = none yet).
	Segment  uint64 `json:"segment"`
	Snapshot uint64 `json:"snapshot"`
	// Records and Bytes count appends since Open (this process).
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// Fsyncs is the number of fsync calls those records cost; with
	// group commit, Records/Fsyncs is the batching factor.
	Fsyncs int64 `json:"fsync_batches"`
	// Snapshots counts Compact calls since Open.
	Snapshots int64 `json:"snapshots"`
	// TornBytes is the size of the torn tail Open truncated (0 on a
	// clean open); TailRecords the committed records in segments at or
	// after the snapshot, i.e. the replay a crash right now would cost.
	TornBytes   int64 `json:"torn_bytes,omitempty"`
	TailRecords int64 `json:"tail_records"`
}

// fileError wraps a path into an error message consistently.
func fileError(op, path string, err error) error {
	return fmt.Errorf("journal: %s %s: %w", op, path, err)
}
