package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalTornTail mutilates a valid journal at arbitrary offsets —
// truncation and byte corruption — and asserts the two recovery
// invariants: Open never fails on damage (and never panics), and the
// replayed stream is always a clean prefix of the records originally
// committed; a partial or corrupt record is never delivered.
func FuzzJournalTornTail(f *testing.F) {
	f.Add(uint(3), 0, byte(0))     // truncate inside the first frames
	f.Add(uint(40), 1, byte(0xFF)) // flip a byte mid-stream
	f.Add(uint(0), 0, byte(0))     // empty file
	f.Add(uint(1<<16), 1, byte(1)) // damage beyond EOF clamps
	f.Fuzz(func(t *testing.T, off uint, mode int, x byte) {
		dir := t.TempDir()
		j, err := Open(dir)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		var want [][]byte
		for i := 0; i < 6; i++ {
			rec := []byte(fmt.Sprintf(`{"t":"update","i":%d,"pad":"%s"}`, i, string(bytes.Repeat([]byte{'p'}, i*7))))
			want = append(want, rec)
			if err := j.Append(rec); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		j.Close()

		seg := filepath.Join(dir, segName(1))
		buf, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		pos := int(off % uint(len(buf)+1))
		switch mode % 2 {
		case 0: // truncate at pos
			buf = buf[:pos]
		case 1: // corrupt the byte at pos
			if pos < len(buf) {
				buf[pos] ^= x | 1
			}
		}
		if err := os.WriteFile(seg, buf, 0o644); err != nil {
			t.Fatal(err)
		}

		j2, err := Open(dir)
		if err != nil {
			t.Fatalf("Open after damage: %v", err)
		}
		defer j2.Close()
		i := 0
		_, err = j2.Replay(func(p []byte) error {
			if i >= len(want) {
				return fmt.Errorf("replayed %d records, committed only %d", i+1, len(want))
			}
			if !bytes.Equal(p, want[i]) {
				return fmt.Errorf("record %d = %q, want %q: damage surfaced a non-prefix stream", i, p, want[i])
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// The journal must remain writable after absorbing damage.
		if err := j2.Append([]byte("post-damage")); err != nil {
			t.Fatalf("Append after damage: %v", err)
		}
	})
}
