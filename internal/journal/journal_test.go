package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func reopen(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func collect(t *testing.T, j *Journal) [][]byte {
	t.Helper()
	var recs [][]byte
	n, err := j.Replay(func(p []byte) error {
		recs = append(recs, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(recs) {
		t.Fatalf("Replay count %d != %d records", n, len(recs))
	}
	return recs
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := reopen(t, dir)
	want := [][]byte{[]byte("alpha"), []byte(`{"t":"update","n":2}`), {}, []byte("delta")}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := reopen(t, dir)
	defer j2.Close()
	got := collect(t, j2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if _, ok := j2.Snapshot(); ok {
		t.Fatalf("Snapshot present before any Compact")
	}
	if s := j2.Stats(); s.TailRecords != int64(len(want)) {
		t.Fatalf("TailRecords = %d, want %d", s.TailRecords, len(want))
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := reopen(t, dir)
	for i := 0; i < 5; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	// Simulate a crash mid-append: chop bytes off the segment tail so
	// the final record's frame is incomplete.
	seg := filepath.Join(dir, segName(1))
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < headerSize+5; cut += 3 {
		if err := os.WriteFile(seg, buf[:len(buf)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2 := reopen(t, dir)
		got := collect(t, j2)
		if len(got) != 4 {
			t.Fatalf("cut=%d: replayed %d records, want 4 (torn tail dropped)", cut, len(got))
		}
		if s := j2.Stats(); s.TornBytes == 0 {
			t.Fatalf("cut=%d: TornBytes not reported", cut)
		}
		// The truncated tail must be gone on disk too: append a fresh
		// record and verify the stream reads 4 old + 1 new.
		if err := j2.Append([]byte("after-crash")); err != nil {
			t.Fatalf("Append after tear: %v", err)
		}
		j2.Close()
		j3 := reopen(t, dir)
		got3 := collect(t, j3)
		if len(got3) != 5 || string(got3[4]) != "after-crash" {
			t.Fatalf("cut=%d: post-tear stream has %d records", cut, len(got3))
		}
		j3.Close()
		// Restore the intact segment for the next cut.
		if err := os.WriteFile(seg, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalCorruptMidSegmentStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j := reopen(t, dir)
	for i := 0; i < 3; i++ {
		if err := j.Append(bytes.Repeat([]byte{byte('a' + i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	seg := filepath.Join(dir, segName(1))
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second record: its CRC fails, so
	// replay must deliver only record 0 — nothing after a corrupt
	// frame can be trusted.
	frameLen := headerSize + 40
	buf[frameLen+headerSize+3] ^= 0xFF
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := reopen(t, dir)
	defer j2.Close()
	got := collect(t, j2)
	if len(got) != 1 {
		t.Fatalf("replayed %d records past corruption, want 1", len(got))
	}
}

func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j := reopen(t, dir)
	for i := 0; i < 4; i++ {
		if err := j.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	state := []byte(`{"snapshot":true}`)
	if err := j.Compact(state); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j.Append([]byte("new-0")); err != nil {
		t.Fatal(err)
	}
	if s := j.Stats(); s.Segment != 2 || s.Snapshot != 2 || s.TailRecords != 1 {
		t.Fatalf("post-compact stats = %+v", s)
	}
	j.Close()

	j2 := reopen(t, dir)
	defer j2.Close()
	snap, ok := j2.Snapshot()
	if !ok || !bytes.Equal(snap, state) {
		t.Fatalf("Snapshot = %q, %v; want %q", snap, ok, state)
	}
	got := collect(t, j2)
	if len(got) != 1 || string(got[0]) != "new-0" {
		t.Fatalf("post-compact replay = %q, want [new-0]", got)
	}
	// Old segment and its era are deleted.
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("old segment not deleted: %v", err)
	}
}

func TestJournalCompactCrashWindows(t *testing.T) {
	// A crash between Compact's steps must leave a recoverable
	// journal. Simulate the two windows by hand-placing files.
	t.Run("tmp snapshot left behind", func(t *testing.T) {
		dir := t.TempDir()
		j := reopen(t, dir)
		j.Append([]byte("r0"))
		j.Close()
		// Crash after writing snap tmp, before rename: tmp ignored.
		os.WriteFile(filepath.Join(dir, snapName(2)+".tmp"), []byte("junk"), 0o644)
		j2 := reopen(t, dir)
		defer j2.Close()
		if _, ok := j2.Snapshot(); ok {
			t.Fatal("tmp snapshot must not be loaded")
		}
		if got := collect(t, j2); len(got) != 1 {
			t.Fatalf("replay = %d records, want 1", len(got))
		}
	})
	t.Run("snapshot renamed but old files not deleted", func(t *testing.T) {
		dir := t.TempDir()
		j := reopen(t, dir)
		j.Append([]byte("r0"))
		j.Close()
		// Crash after snapshot publish + new segment create, before
		// deletes: snapshot wins, segment 1 is dead and ignored.
		os.WriteFile(filepath.Join(dir, snapName(2)), []byte("S"), 0o644)
		os.WriteFile(filepath.Join(dir, segName(2)), nil, 0o644)
		j2 := reopen(t, dir)
		defer j2.Close()
		snap, ok := j2.Snapshot()
		if !ok || string(snap) != "S" {
			t.Fatalf("Snapshot = %q, %v", snap, ok)
		}
		if got := collect(t, j2); len(got) != 0 {
			t.Fatalf("dead segment replayed: %q", got)
		}
		if s := j2.Stats(); s.Segment != 2 {
			t.Fatalf("active segment = %d, want 2", s.Segment)
		}
	})
}

func TestJournalGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j := reopen(t, dir)
	defer j.Close()
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := j.Stats()
	if s.Records != writers*per {
		t.Fatalf("Records = %d, want %d", s.Records, writers*per)
	}
	if s.Fsyncs > s.Records {
		t.Fatalf("Fsyncs %d > Records %d: group commit over-syncing", s.Fsyncs, s.Records)
	}
	if s.Fsyncs == 0 {
		t.Fatal("no fsyncs recorded")
	}
	j.Close()
	j2 := reopen(t, dir)
	defer j2.Close()
	if got := collect(t, j2); len(got) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(got), writers*per)
	}
}

func TestJournalRejectsOversizeRecord(t *testing.T) {
	j := reopen(t, t.TempDir())
	defer j.Close()
	if err := j.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	j := reopen(t, t.TempDir())
	j.Close()
	if err := j.Append([]byte("x")); err == nil {
		t.Fatal("append on closed journal succeeded")
	}
	if err := j.Compact(nil); err == nil {
		t.Fatal("compact on closed journal succeeded")
	}
}

func TestJournalIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a segment"), 0o644)
	os.WriteFile(filepath.Join(dir, "wal-bogus.log"), []byte("junk"), 0o644)
	j := reopen(t, dir)
	defer j.Close()
	if err := j.Append([]byte("ok")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := collect(t, j); len(got) != 0 {
		// Replay serves the Open-time tail only; live appends are
		// already-applied state.
		t.Fatalf("unexpected replay records: %q", got)
	}
}
