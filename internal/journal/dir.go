package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Journal is one open write-ahead journal directory: an active segment
// accepting group-committed appends, plus the snapshot/segment history
// recovery reads. All methods are safe for concurrent use.
type Journal struct {
	dir string

	// mu serialises file writes and rotation; the active segment and
	// its write offset live under it.
	mu      sync.Mutex
	f       *os.File
	seg     uint64
	written int64

	// syncMu is the group-commit leader lock: one fsync at a time,
	// each covering everything written before it started. synced is
	// the durable high-water mark, read and written under syncMu (with
	// mu taken inside to sample written).
	syncMu sync.Mutex
	synced int64

	// replay state discovered at Open.
	snapSeq   uint64
	snapBytes []byte
	tail      [][]byte // committed records since the snapshot, in order

	statMu sync.Mutex
	stats  Stats
}

func segName(seq uint64) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.json", seq) }

// parseSeq extracts the sequence number of a journal file name, or ok
// = false for foreign files (left alone).
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// Open opens (or initialises) a journal directory: it locates the
// highest readable snapshot, loads every committed record of the
// segments at or after it, truncates the active segment's torn tail if
// the last crash left one, and positions the writer at the clean end.
// The loaded snapshot and records are served by Snapshot and Replay
// until the first Compact discards them.
func Open(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fileError("mkdir", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fileError("read", dir, err)
	}
	var segs, snaps []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, seq)
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".json"); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	j := &Journal{dir: dir}

	// Highest readable snapshot wins; an unreadable one (torn rename
	// cannot produce this, but disks can) falls back to the previous.
	for i := len(snaps) - 1; i >= 0; i-- {
		b, err := os.ReadFile(filepath.Join(dir, snapName(snaps[i])))
		if err == nil {
			j.snapSeq = snaps[i]
			j.snapBytes = b
			break
		}
	}

	// Replay segments at or after the snapshot, in order. The torn
	// tail of the FINAL segment is expected (a crash mid-append); a
	// tear in an earlier segment poisons everything after it — replay
	// stops there, and the writer resumes from that point, so the
	// suffix is dropped rather than half-applied.
	live := segs[:0]
	for _, s := range segs {
		if s >= j.snapSeq {
			live = append(live, s)
		}
	}
	lastSeg := j.snapSeq
	if lastSeg == 0 {
		lastSeg = 1
	}
	cleanEnd := int64(0)
	torn := false
	for _, s := range live {
		lastSeg = s
		path := filepath.Join(dir, segName(s))
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, fileError("read", path, err)
		}
		clean, _, _ := scan(buf, func(p []byte) error {
			j.tail = append(j.tail, append([]byte(nil), p...))
			return nil
		})
		cleanEnd = int64(clean)
		if clean < len(buf) {
			j.stats.TornBytes += int64(len(buf) - clean)
			torn = true
			break
		}
	}

	// Open the active segment at its clean end (truncating a tear).
	path := filepath.Join(dir, segName(lastSeg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fileError("open", path, err)
	}
	if torn {
		if err := f.Truncate(cleanEnd); err != nil {
			f.Close()
			return nil, fileError("truncate", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fileError("sync", path, err)
		}
	} else if fi, err := f.Stat(); err == nil {
		cleanEnd = fi.Size()
	}
	if _, err := f.Seek(cleanEnd, 0); err != nil {
		f.Close()
		return nil, fileError("seek", path, err)
	}
	j.f = f
	j.seg = lastSeg
	j.written = cleanEnd
	j.synced = cleanEnd
	j.stats.TailRecords = int64(len(j.tail))
	syncDir(dir)
	return j, nil
}

// Snapshot returns the state blob of the snapshot recovery starts
// from, or ok = false when the journal has never been compacted.
func (j *Journal) Snapshot() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapBytes, j.snapBytes != nil
}

// Replay calls fn with every committed record since the snapshot, in
// append order, and returns how many were delivered. It replays the
// records as loaded by Open — appends made through this handle are
// already applied state, not recovery work.
func (j *Journal) Replay(fn func(payload []byte) error) (int, error) {
	j.mu.Lock()
	tail := j.tail
	j.mu.Unlock()
	for i, rec := range tail {
		if err := fn(rec); err != nil {
			return i, err
		}
	}
	return len(tail), nil
}

// TailRecords reports the committed records a recovery right now would
// replay: the Open tail plus appends since (minus compactions).
func (j *Journal) TailRecords() int64 {
	j.statMu.Lock()
	defer j.statMu.Unlock()
	return j.stats.TailRecords
}

// Append commits one record: it is framed, written to the active
// segment, and not acknowledged until an fsync covers it. Concurrent
// appends share fsyncs (group commit).
func (j *Journal) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	buf := frame(nil, payload)

	j.mu.Lock()
	if j.f == nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: append on closed journal")
	}
	if _, err := j.f.Write(buf); err != nil {
		j.mu.Unlock()
		return fileError("write", segName(j.seg), err)
	}
	j.written += int64(len(buf))
	end := j.written
	f := j.f
	seg := j.seg
	j.mu.Unlock()

	j.statMu.Lock()
	j.stats.Records++
	j.stats.Bytes += int64(len(buf))
	j.stats.TailRecords++
	j.statMu.Unlock()

	// Group commit: whoever holds syncMu next fsyncs everything
	// written so far; arrivals during that fsync queue up and are
	// usually already covered when they get the lock.
	j.syncMu.Lock()
	defer j.syncMu.Unlock()
	j.mu.Lock()
	cur, curSeg := j.written, j.seg
	j.mu.Unlock()
	if curSeg == seg && j.synced >= end {
		return nil // an earlier leader's fsync covered this record
	}
	if err := f.Sync(); err != nil {
		return fileError("sync", segName(seg), err)
	}
	if curSeg == seg {
		j.synced = cur
	}
	j.statMu.Lock()
	j.stats.Fsyncs++
	j.statMu.Unlock()
	return nil
}

// Compact atomically publishes state as the new snapshot and rotates
// to a fresh segment: after it returns, recovery loads state and
// replays only records appended after this call. Old segments and
// snapshots are deleted best-effort — a crash between steps leaves
// dead files, never an inconsistent journal.
func (j *Journal) Compact(state []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: compact on closed journal")
	}
	// The snapshot must not advertise coverage of records that are in
	// the OS buffer but not on disk: sync the active segment first.
	if err := j.f.Sync(); err != nil {
		return fileError("sync", segName(j.seg), err)
	}
	next := j.seg + 1

	// 1. Publish the snapshot: temp, fsync, rename, fsync dir.
	tmp := filepath.Join(j.dir, snapName(next)+".tmp")
	if err := writeFileSync(tmp, state); err != nil {
		return err
	}
	final := filepath.Join(j.dir, snapName(next))
	if err := os.Rename(tmp, final); err != nil {
		return fileError("rename", final, err)
	}
	syncDir(j.dir)

	// 2. Rotate: open the fresh segment; the old handle closes.
	path := filepath.Join(j.dir, segName(next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fileError("open", path, err)
	}
	syncDir(j.dir)
	old := j.f
	oldSeg := j.seg
	j.f = f
	j.seg = next
	j.written = 0
	j.syncMu.Lock()
	j.synced = 0
	j.syncMu.Unlock()
	old.Close()

	// 3. The snapshot supersedes the loaded history and everything in
	// segments ≤ oldSeg; delete the dead files best-effort.
	j.snapSeq = next
	j.snapBytes = append([]byte(nil), state...)
	j.tail = nil
	for seq := oldSeg; seq >= 1; seq-- {
		segPath := filepath.Join(j.dir, segName(seq))
		snapPath := filepath.Join(j.dir, snapName(seq))
		segGone := os.Remove(segPath) != nil
		snapGone := os.Remove(snapPath) != nil
		if segGone && snapGone && seq < oldSeg {
			break // past the start of history
		}
	}

	j.statMu.Lock()
	j.stats.Snapshots++
	j.stats.TailRecords = 0
	j.statMu.Unlock()
	return nil
}

// Stats returns a copy of the counters.
func (j *Journal) Stats() Stats {
	j.statMu.Lock()
	s := j.stats
	j.statMu.Unlock()
	j.mu.Lock()
	s.Segment = j.seg
	s.Snapshot = j.snapSeq
	j.mu.Unlock()
	return s
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Close syncs and closes the active segment. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fileError("create", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fileError("write", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fileError("sync", path, err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates are durable;
// best-effort because some platforms refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
