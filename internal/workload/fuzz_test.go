package workload

import "testing"

// FuzzPermIsPermutation: every seed and size yields a permutation.
func FuzzPermIsPermutation(f *testing.F) {
	f.Add(uint64(1), uint8(8))
	f.Add(uint64(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8) {
		n := int(nRaw%128) + 1
		p := NewRNG(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	})
}
