package workload

import "testing"

// refLabels is an independent min-label BFS, kept deliberately apart
// from the Oracle's union-find so the two implementations check each
// other.
func refLabels(g *Graph) []int64 {
	out := make([]int64, g.N)
	for i := range out {
		out[i] = -1
	}
	for s := 0; s < g.N; s++ {
		if out[s] >= 0 {
			continue
		}
		queue := []int{s}
		out[s] = int64(s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for u := 0; u < g.N; u++ {
				if g.Adj[v][u] && out[u] < 0 {
					out[u] = int64(s)
					queue = append(queue, u)
				}
			}
		}
	}
	return out
}

func cloneGraph(g *Graph) *Graph {
	c := NewGraph(g.N)
	for i := range g.Adj {
		copy(c.Adj[i], g.Adj[i])
	}
	return c
}

func TestUpdateBatchReplayable(t *testing.T) {
	r := NewRNG(7)
	g := r.Gnp(24, 0.1)
	before := cloneGraph(g)
	batch := r.UpdateBatch(g, 40)
	if len(batch) != 40 {
		t.Fatalf("batch len %d, want 40", len(batch))
	}
	for _, up := range batch {
		if up.Add {
			before.AddEdge(up.U, up.V)
		} else {
			before.Adj[up.U][up.V] = false
			before.Adj[up.V][up.U] = false
		}
	}
	for i := range g.Adj {
		for j := range g.Adj[i] {
			if g.Adj[i][j] != before.Adj[i][j] {
				t.Fatalf("replayed batch diverges at (%d,%d)", i, j)
			}
		}
	}
}

func TestOracleMatchesBFS(t *testing.T) {
	r := NewRNG(11)
	g := r.Gnp(32, 0.08)
	o := NewOracle(g)
	for step := 0; step < 50; step++ {
		batch := r.UpdateBatch(g, 1+r.Intn(5))
		o.Apply(batch)
		want := refLabels(g)
		got := o.Labels()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("step %d: label[%d] = %d, want %d", step, v, got[v], want[v])
			}
		}
	}
}

func TestOracleInsertOnlyStaysIncremental(t *testing.T) {
	g := NewGraph(16)
	o := NewOracle(g)
	var batch []EdgeUpdate
	for v := 0; v+1 < 16; v++ {
		batch = append(batch, EdgeUpdate{U: v, V: v + 1, Add: true})
	}
	o.Apply(batch)
	if o.dirty {
		t.Fatal("insert-only batch marked oracle dirty")
	}
	for v, l := range o.Labels() {
		if l != 0 {
			t.Fatalf("path label[%d] = %d, want 0", v, l)
		}
	}
}

func TestImageFlipMatchesGraph(t *testing.T) {
	r := NewRNG(3)
	im := r.RandomImage(8, 8, 0.5)
	g := im.Graph()
	for step := 0; step < 200; step++ {
		p := r.Intn(64)
		for _, up := range im.Flip(p) {
			if up.Add {
				g.AddEdge(up.U, up.V)
			} else {
				g.Adj[up.U][up.V] = false
				g.Adj[up.V][up.U] = false
			}
		}
		fresh := im.Graph()
		for i := range g.Adj {
			for j := range g.Adj[i] {
				if g.Adj[i][j] != fresh.Adj[i][j] {
					t.Fatalf("step %d: flip updates diverge from Graph() at (%d,%d)", step, i, j)
				}
			}
		}
	}
}

func TestPixelBatchReplayable(t *testing.T) {
	r := NewRNG(5)
	im := r.RandomImage(8, 8, 0.5)
	g := im.Graph()
	for step := 0; step < 20; step++ {
		batch := r.PixelBatch(im, 1+r.Intn(6))
		for _, up := range batch {
			if up.Add {
				g.AddEdge(up.U, up.V)
			} else {
				g.Adj[up.U][up.V] = false
				g.Adj[up.V][up.U] = false
			}
		}
		fresh := im.Graph()
		for i := range g.Adj {
			for j := range g.Adj[i] {
				if g.Adj[i][j] != fresh.Adj[i][j] {
					t.Fatalf("step %d: pixel batch diverges at (%d,%d)", step, i, j)
				}
			}
		}
	}
}
