package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed not remapped; generator stuck")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolMatrixDensity(t *testing.T) {
	r := NewRNG(9)
	m := r.BoolMatrix(64, 0.5)
	ones := 0
	for i := range m {
		for j := range m[i] {
			if m[i][j] != 0 && m[i][j] != 1 {
				t.Fatalf("non-Boolean entry %d", m[i][j])
			}
			ones += int(m[i][j])
		}
	}
	// 4096 Bernoulli(0.5) draws: expect ~2048, allow wide slack.
	if ones < 1500 || ones > 2600 {
		t.Errorf("density %d/4096 implausible for p=0.5", ones)
	}
}

func TestGnpProperties(t *testing.T) {
	r := NewRNG(11)
	g := r.Gnp(32, 0.3)
	for i := 0; i < g.N; i++ {
		if g.Adj[i][i] {
			t.Fatalf("self loop at %d", i)
		}
		for j := 0; j < g.N; j++ {
			if g.Adj[i][j] != g.Adj[j][i] {
				t.Fatalf("asymmetric adjacency at (%d,%d)", i, j)
			}
		}
	}
	if g.EdgeCount() == 0 {
		t.Error("G(32,0.3) produced no edges")
	}
}

// unionFind is a reference implementation used to count components.
type unionFind struct{ parent []int }

func newUF(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

func componentCount(g *Graph) int {
	uf := newUF(g.N)
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if g.Adj[i][j] {
				uf.union(i, j)
			}
		}
	}
	seen := map[int]bool{}
	for v := 0; v < g.N; v++ {
		seen[uf.find(v)] = true
	}
	return len(seen)
}

func TestComponentsGraph(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5} {
		g := NewRNG(13).ComponentsGraph(40, k)
		if got := componentCount(g); got != k {
			t.Errorf("ComponentsGraph(40,%d) has %d components", k, got)
		}
	}
}

func TestWeightMatrixDistinctSymmetric(t *testing.T) {
	n := 12
	w := NewRNG(17).WeightMatrix(n)
	seen := map[int64]bool{}
	for i := 0; i < n; i++ {
		if w[i][i] != 0 {
			t.Fatalf("diagonal weight %d at %d", w[i][i], i)
		}
		for j := i + 1; j < n; j++ {
			if w[i][j] != w[j][i] {
				t.Fatalf("asymmetric weight at (%d,%d)", i, j)
			}
			if w[i][j] <= 0 {
				t.Fatalf("non-positive weight at (%d,%d)", i, j)
			}
			if seen[w[i][j]] {
				t.Fatalf("duplicate weight %d", w[i][j])
			}
			seen[w[i][j]] = true
		}
	}
}

func TestComplexSignal(t *testing.T) {
	s := NewRNG(19).ComplexSignal(64)
	if len(s) != 64 {
		t.Fatalf("len = %d", len(s))
	}
	for _, v := range s {
		if real(v) < -1 || real(v) >= 1 || imag(v) < -1 || imag(v) >= 1 {
			t.Fatalf("sample %v out of range", v)
		}
	}
}

func TestGraphAddEdge(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(1, 1) // ignored self-loop
	if g.EdgeCount() != 0 {
		t.Error("self-loop counted")
	}
	g.AddEdge(0, 3)
	if !g.HasEdge(3, 0) || g.EdgeCount() != 1 {
		t.Error("undirected edge not symmetric")
	}
}

func TestGridGraph(t *testing.T) {
	g := GridGraph(3, 4)
	if g.N != 12 {
		t.Fatalf("vertices = %d", g.N)
	}
	// 3·3 horizontal + 2·4 vertical = 17 edges.
	if g.EdgeCount() != 17 {
		t.Errorf("edges = %d, want 17", g.EdgeCount())
	}
	if componentCount(g) != 1 {
		t.Error("grid not connected")
	}
	// Corner degree 2, centre degree 4.
	deg := func(v int) int {
		d := 0
		for u := 0; u < g.N; u++ {
			if g.Adj[v][u] {
				d++
			}
		}
		return d
	}
	if deg(0) != 2 || deg(5) != 4 {
		t.Errorf("corner/centre degrees %d/%d", deg(0), deg(5))
	}
}

func TestCycleGraph(t *testing.T) {
	g := CycleGraph(8)
	if g.EdgeCount() != 8 || componentCount(g) != 1 {
		t.Errorf("cycle: %d edges, %d components", g.EdgeCount(), componentCount(g))
	}
}

func TestBinaryTreeGraph(t *testing.T) {
	g := BinaryTreeGraph(15)
	if g.EdgeCount() != 14 || componentCount(g) != 1 {
		t.Errorf("tree: %d edges, %d components", g.EdgeCount(), componentCount(g))
	}
}
