package workload

// Oracle is the pure-Go dynamic-connectivity reference: it maintains
// min-vertex component labels under edge update batches by union-find
// on insertions and a full rebuild when a batch deletes an edge. It is
// deliberately simple — it exists as differential ground truth for the
// incremental machine engines, not as a fast algorithm.
type Oracle struct {
	g      *Graph
	parent []int
	dirty  bool // an effective deletion happened since the last rebuild
}

// NewOracle clones g and labels its components.
func NewOracle(g *Graph) *Oracle {
	o := &Oracle{g: NewGraph(g.N), parent: make([]int, g.N)}
	for i := range g.Adj {
		copy(o.g.Adj[i], g.Adj[i])
	}
	o.rebuild()
	return o
}

func (o *Oracle) find(v int) int {
	for o.parent[v] != v {
		o.parent[v] = o.parent[o.parent[v]]
		v = o.parent[v]
	}
	return v
}

// union links by smaller root so roots stay component minima.
func (o *Oracle) union(u, v int) {
	ru, rv := o.find(u), o.find(v)
	if ru == rv {
		return
	}
	if ru > rv {
		ru, rv = rv, ru
	}
	o.parent[rv] = ru
}

func (o *Oracle) rebuild() {
	for v := range o.parent {
		o.parent[v] = v
	}
	for u := 0; u < o.g.N; u++ {
		for v := u + 1; v < o.g.N; v++ {
			if o.g.Adj[u][v] {
				o.union(u, v)
			}
		}
	}
	o.dirty = false
}

// Apply folds one update batch into the oracle's graph. Insertions
// union incrementally; any effective deletion marks the structure
// dirty so Labels rebuilds from scratch.
func (o *Oracle) Apply(batch []EdgeUpdate) {
	for _, up := range batch {
		if up.U == up.V {
			continue
		}
		if up.Add {
			if !o.g.Adj[up.U][up.V] {
				o.g.AddEdge(up.U, up.V)
				if !o.dirty {
					o.union(up.U, up.V)
				}
			}
		} else if o.g.Adj[up.U][up.V] {
			o.g.Adj[up.U][up.V] = false
			o.g.Adj[up.V][up.U] = false
			o.dirty = true
		}
	}
}

// Labels returns the current min-vertex label of every vertex.
func (o *Oracle) Labels() []int64 {
	if o.dirty {
		o.rebuild()
	}
	out := make([]int64, o.g.N)
	for v := range out {
		out[v] = int64(o.find(v))
	}
	return out
}

// Graph returns the oracle's current graph (shared, do not mutate).
func (o *Oracle) Graph() *Graph { return o.g }
