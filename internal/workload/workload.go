// Package workload generates the deterministic inputs the benchmark
// harness feeds to every network: integer sequences to sort, Boolean
// and weighted matrices to multiply, and random graphs for the
// connected-components and spanning-tree experiments.
//
// All generators are driven by an explicit xorshift64* state so every
// experiment is reproducible from its seed, independent of Go
// runtime or library version.
package workload

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). The zero value is not valid; use NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value. A zero seed
// is remapped to a fixed non-zero constant because the xorshift state
// must never be zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// State returns the generator's internal state, for durable snapshots.
// SetState(State()) resumes the exact stream.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator state with a value previously
// returned by State. A zero state is remapped as in NewRNG.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Ints returns n pseudo-random values in [0, bound).
func (r *RNG) Ints(n, bound int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.Intn(bound))
	}
	return out
}

// Perm returns a pseudo-random permutation of 0..n-1 (Fisher–Yates).
// Because the values are distinct it matches the precondition of the
// paper's basic SORT-OTN ("the numbers are all distinct").
func (r *RNG) Perm(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// BoolMatrix returns an n×n 0/1 matrix where each entry is 1 with
// probability p.
func (r *RNG) BoolMatrix(n int, p float64) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			if r.Float64() < p {
				m[i][j] = 1
			}
		}
	}
	return m
}

// IntMatrix returns an n×n matrix of values in [0, bound).
func (r *RNG) IntMatrix(n, bound int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = r.Ints(n, bound)
	}
	return m
}

// Graph is an undirected graph on vertices 0..N-1 in the adjacency
// representation the paper's algorithms use.
type Graph struct {
	N   int
	Adj [][]bool
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Graph{N: n, Adj: adj}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.Adj[u][v] = true
	g.Adj[v][u] = true
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.N)
	for i := range g.Adj {
		copy(c.Adj[i], g.Adj[i])
	}
	return c
}

// HasEdge reports whether {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool { return g.Adj[u][v] }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	c := 0
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if g.Adj[i][j] {
				c++
			}
		}
	}
	return c
}

// Gnp returns an Erdős–Rényi G(n, p) graph.
func (r *RNG) Gnp(n int, p float64) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// ComponentsGraph returns a graph on n vertices built from k dense
// clusters with no inter-cluster edges, giving a known component
// structure for tests.
func (r *RNG) ComponentsGraph(n, k int) *Graph {
	if k < 1 {
		k = 1
	}
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		c := v % k
		// Link v to a random earlier vertex of the same cluster so
		// each cluster is connected.
		for u := c; u < v; u += k {
			if r.Float64() < 0.5 || u+k >= v {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// GridGraph returns the r×c grid graph (rc vertices, vertices joined
// to their horizontal and vertical neighbours) — the planar,
// large-diameter stress case for the component algorithms.
func GridGraph(r, c int) *Graph {
	g := NewGraph(r * c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := i*c + j
			if j+1 < c {
				g.AddEdge(v, v+1)
			}
			if i+1 < r {
				g.AddEdge(v, v+c)
			}
		}
	}
	return g
}

// CycleGraph returns the n-cycle.
func CycleGraph(n int) *Graph {
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g
}

// BinaryTreeGraph returns the complete binary tree on n vertices
// (heap numbering) — depth Θ(log n), the opposite stress case to the
// path.
func BinaryTreeGraph(n int) *Graph {
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, (v-1)/2)
	}
	return g
}

// WeightMatrix returns a symmetric n×n weight matrix for a complete
// graph with distinct weights in [1, n²], suitable for the MST
// experiments (distinct weights make the MST unique, which simplifies
// validation — the paper makes the same assumption implicitly by
// tie-breaking on edge identity).
func (r *RNG) WeightMatrix(n int) [][]int64 {
	// Distinct weights: a random permutation of 1..n(n-1)/2 scattered
	// over the upper triangle.
	m := n * (n - 1) / 2
	perm := r.Perm(m)
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w[i][j] = perm[idx] + 1
			w[j][i] = w[i][j]
			idx++
		}
	}
	return w
}

// ComplexSignal returns n pseudo-random complex samples with real and
// imaginary parts in [-1, 1), for the DFT experiments.
func (r *RNG) ComplexSignal(n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(2*r.Float64()-1, 2*r.Float64()-1)
	}
	return out
}
