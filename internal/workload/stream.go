package workload

// EdgeUpdate is one element of a streamed update batch: insert (Add)
// or delete the undirected edge {U, V}. Self-loops are never emitted
// by the generators and are ignored by every consumer.
type EdgeUpdate struct {
	U, V int
	Add  bool
}

// UpdateBatch draws k random edge toggles against g and applies them
// to g, which acts as the stream's shadow state: an absent edge
// becomes an insertion, a present one a deletion. The returned slice
// is the batch in arrival order; replaying it against a copy of the
// pre-batch graph reproduces g exactly.
func (r *RNG) UpdateBatch(g *Graph, k int) []EdgeUpdate {
	batch := make([]EdgeUpdate, 0, k)
	for len(batch) < k {
		u := r.Intn(g.N)
		v := r.Intn(g.N)
		if u == v {
			continue
		}
		up := EdgeUpdate{U: u, V: v, Add: !g.HasEdge(u, v)}
		if up.Add {
			g.AddEdge(u, v)
		} else {
			g.Adj[u][v] = false
			g.Adj[v][u] = false
		}
		batch = append(batch, up)
	}
	return batch
}

// Image is a binary pixel image on an R×C grid — the mesh-native
// component-labeling workload from Stout's paper. Components are
// 4-connected runs of on-pixels; the derived graph has one vertex per
// pixel and edges only between adjacent on-pixels, so off-pixels are
// isolated vertices.
type Image struct {
	R, C int
	On   []bool // row-major, len R*C
}

// NewImage returns an all-off image.
func NewImage(r, c int) *Image {
	return &Image{R: r, C: c, On: make([]bool, r*c)}
}

// RandomImage returns an r×c image where each pixel is on with
// probability p. Below the site-percolation threshold (~0.59 on the
// square lattice) components stay small, which is the regime the
// incremental engine exploits.
func (r *RNG) RandomImage(rows, cols int, p float64) *Image {
	im := NewImage(rows, cols)
	for i := range im.On {
		im.On[i] = r.Float64() < p
	}
	return im
}

// Graph returns the 4-adjacency graph of the image's on-pixels.
func (im *Image) Graph() *Graph {
	g := NewGraph(im.R * im.C)
	for i := 0; i < im.R; i++ {
		for j := 0; j < im.C; j++ {
			v := i*im.C + j
			if !im.On[v] {
				continue
			}
			if j+1 < im.C && im.On[v+1] {
				g.AddEdge(v, v+1)
			}
			if i+1 < im.R && im.On[v+im.C] {
				g.AddEdge(v, v+im.C)
			}
		}
	}
	return g
}

// Flip toggles pixel p and returns the edge updates that transform the
// pre-flip adjacency graph into the post-flip one: turning a pixel on
// inserts edges to every on 4-neighbour, turning it off deletes them.
func (im *Image) Flip(p int) []EdgeUpdate {
	im.On[p] = !im.On[p]
	add := im.On[p]
	i, j := p/im.C, p%im.C
	var batch []EdgeUpdate
	emit := func(q int) {
		if im.On[q] {
			batch = append(batch, EdgeUpdate{U: p, V: q, Add: add})
		}
	}
	if j > 0 {
		emit(p - 1)
	}
	if j+1 < im.C {
		emit(p + 1)
	}
	if i > 0 {
		emit(p - im.C)
	}
	if i+1 < im.R {
		emit(p + im.C)
	}
	return batch
}

// PixelBatch flips k distinct random pixels of im and returns the
// concatenated edge updates (possibly empty, when every flipped pixel
// is isolated). im is mutated; the batch replayed against the
// pre-batch graph reproduces im.Graph().
func (r *RNG) PixelBatch(im *Image, k int) []EdgeUpdate {
	n := im.R * im.C
	if k > n {
		k = n
	}
	var batch []EdgeUpdate
	seen := make(map[int]bool, k)
	for len(seen) < k {
		p := r.Intn(n)
		if seen[p] {
			continue
		}
		seen[p] = true
		batch = append(batch, im.Flip(p)...)
	}
	return batch
}
