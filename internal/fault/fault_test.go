package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestEmptyPlan(t *testing.T) {
	if !New(7).Empty() {
		t.Error("fresh plan not empty")
	}
	var p *Plan
	if !p.Empty() {
		t.Error("nil plan not empty")
	}
	if New(7).ForTree(true, 0, 8, nil) != nil {
		t.Error("empty plan produced a tree view")
	}
	if New(7).KillEdge(true, 0, 5).Empty() {
		t.Error("plan with a dead edge reported empty")
	}
}

func TestForTreeProjection(t *testing.T) {
	p := New(1).KillEdge(true, 2, 5).KillIP(false, 3, 1)
	h := &Health{}

	if f := p.ForTree(true, 0, 8, h); f != nil {
		t.Error("healthy row tree 0 got a non-nil view")
	}
	f := p.ForTree(true, 2, 8, h)
	if f == nil {
		t.Fatal("row tree 2 should have a view")
	}
	if !f.EdgeDead(5) || f.EdgeDead(4) || f.EdgeDead(2) {
		t.Error("dead-edge projection wrong")
	}
	if !f.Dead() {
		t.Error("view with a dead edge reports !Dead")
	}

	// Dead IP at the root of column tree 3 silences both child links.
	g := p.ForTree(false, 3, 8, h)
	if g == nil {
		t.Fatal("col tree 3 should have a view")
	}
	if !g.IPDead(1) || !g.EdgeDead(2) || !g.EdgeDead(3) {
		t.Error("dead-IP projection wrong")
	}
}

func TestTransientOnlyView(t *testing.T) {
	p := New(9).WithTransients(0.5)
	f := p.ForTree(true, 4, 8, &Health{})
	if f == nil {
		t.Fatal("transient rate should force a view on every tree")
	}
	if f.Dead() {
		t.Error("transient-only view reports dead hardware")
	}
	if f.EdgeDead(2) {
		t.Error("transient-only view kills edges")
	}
}

// TestCorruptAscentDeterminism: the corruption schedule is a pure
// function of (seed, tree identity, ascent counter).
func TestCorruptAscentDeterminism(t *testing.T) {
	mk := func() *TreeFaults { return New(42).WithTransients(0.3).ForTree(true, 1, 16, nil) }
	a, b := mk(), mk()
	hits := 0
	for op := uint64(0); op < 1000; op++ {
		ca, cb := a.CorruptAscent(op), b.CorruptAscent(op)
		if ca != cb {
			t.Fatalf("ascent %d: schedules diverge", op)
		}
		if ca {
			hits++
		}
	}
	// Rate 0.3 over 1000 draws: expect roughly 300, generously bounded.
	if hits < 200 || hits > 400 {
		t.Errorf("corruption rate off: %d/1000 at rate 0.3", hits)
	}
	// Different trees draw independent schedules.
	c := New(42).WithTransients(0.3).ForTree(false, 1, 16, nil)
	same := 0
	for op := uint64(0); op < 1000; op++ {
		if a.CorruptAscent(op) == c.CorruptAscent(op) {
			same++
		}
	}
	if same == 1000 {
		t.Error("row and column trees share a corruption schedule")
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Random(16, 5, 1983)
	b := Random(16, 5, 1983)
	if !reflect.DeepEqual(a, b) {
		t.Error("same (k, n, seed) produced different plans")
	}
	c := Random(16, 5, 1984)
	if reflect.DeepEqual(a.DeadEdges, c.DeadEdges) {
		t.Error("different seeds produced identical plans")
	}
	if len(a.DeadEdges) != 5 {
		t.Fatalf("want 5 dead edges, got %d", len(a.DeadEdges))
	}
	seen := map[Site]bool{}
	for _, s := range a.DeadEdges {
		if seen[s] {
			t.Errorf("duplicate fault site %v", s)
		}
		seen[s] = true
		if s.Tree < 0 || s.Tree >= 16 || s.Node < 2 || s.Node >= 32 {
			t.Errorf("site %v out of range for K=16", s)
		}
	}
	if err := a.Validate(16, 16); err != nil {
		t.Errorf("random plan fails its own validation: %v", err)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    *Plan
		ok   bool
	}{
		{"edge ok", New(1).KillEdge(true, 0, 2), true},
		{"edge root", New(1).KillEdge(true, 0, 1), false}, // node 1 has no parent link
		{"edge high", New(1).KillEdge(true, 0, 16), false},
		{"tree high", New(1).KillEdge(true, 8, 2), false},
		{"ip ok", New(1).KillIP(false, 7, 3), true},
		{"ip leaf", New(1).KillIP(false, 0, 8), false}, // leaves are BPs, not IPs
		{"bp ok", New(1).StickBP(7, 7), true},
		{"bp high", New(1).StickBP(8, 0), false},
		{"rate ok", New(1).WithTransients(0.25), true},
		{"rate one", New(1).WithTransients(1.0), false},
	}
	for _, c := range cases {
		err := c.p.Validate(8, 8)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid plan accepted", c.name)
		}
	}
}

func TestHealthReport(t *testing.T) {
	h := &Health{DeadEdges: 2}
	h.Transients++
	h.Retries++
	h.RetryLatency += 40
	h.Reroute(100)
	if h.AddedLatency() != 140 {
		t.Errorf("added latency %d, want 140", h.AddedLatency())
	}
	if h.Err() != nil {
		t.Error("healthy run reports an error")
	}
	h.Fail(&StormError{Op: "Reduce", Retries: 3})
	if h.Err() == nil || h.Failures() != 1 {
		t.Error("failure not recorded")
	}
	r := h.Report()
	for _, want := range []string{"2 dead edge", "transients caught: 1", "rerouted words:    1", "UNRECOVERED"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestRetriesDefault(t *testing.T) {
	if New(1).Retries() != DefaultMaxRetries {
		t.Error("zero MaxRetries should default")
	}
	p := New(1)
	p.MaxRetries = 7
	if p.Retries() != 7 {
		t.Error("explicit MaxRetries ignored")
	}
	var f *TreeFaults
	if f.MaxRetries() != DefaultMaxRetries {
		t.Error("nil view retry bound wrong")
	}
	if f.CorruptAscent(3) {
		t.Error("nil view corrupts")
	}
	if f.EdgeDead(2) || f.IPDead(1) || f.Dead() {
		t.Error("nil view reports dead hardware")
	}
}
