package fault

import "repro/internal/vlsi"

// Recovery cost model for the checkpoint/rollback supervisor
// (internal/resilience) and the concurrent engine's RunSupervised
// mode. Both must charge identical bit-times so their degraded
// completion times match exactly; keeping the arithmetic here — next
// to the ledger that records it — is what enforces that.
//
// The physical story: every BP carries shadow latches for its live
// register banks. A checkpoint copies `banks` registers bit-serially
// into the shadows, all BPs in parallel, so it costs banks·w
// bit-times regardless of K. A restore is the mirror copy at the same
// cost. After the r-th consecutive rollback the supervisor waits an
// extra r·w bit-times before releasing the replay — a bounded, linear
// backoff that deterministically separates the retry from whatever
// transient storm triggered it.

// CheckpointCost is the bit-times one snapshot (or one restore) of
// `banks` register banks of w-bit words adds to the run.
func CheckpointCost(banks, wordBits int) vlsi.Time {
	if banks < 1 {
		banks = 1
	}
	return vlsi.Time(banks * wordBits)
}

// Backoff is the extra settle time charged before releasing the
// attempt-th replay (attempt counts from 1).
func Backoff(attempt, wordBits int) vlsi.Time {
	if attempt < 1 {
		attempt = 1
	}
	return vlsi.Time(attempt * wordBits)
}
