package fault_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/vlsi"
)

// recordLane simulates one lane's private health ledger: a mix of
// every recordable event, derived from the lane index so each lane's
// contribution is distinct and reproducible.
func recordLane(lane int) *fault.Health {
	h := &fault.Health{}
	for i := 0; i <= lane%3; i++ {
		h.Reroute(vlsi.Time(10 + lane))
	}
	h.Retries++
	h.RetryLatency += vlsi.Time(lane)
	h.Checkpoint(vlsi.Time(2 * lane))
	h.Arrive(lane % 2)
	h.Rollback(vlsi.Time(100+lane), lane%2)
	if lane%4 == 0 {
		h.Fail(fmt.Errorf("lane %d failure", lane))
	}
	return h
}

// TestHealthMergeDeterministicUnderRace is the concurrency contract
// of the ledger: lanes never share a Health — each goroutine records
// into a private ledger, and the combiner merges them in lane order
// afterwards. Run under -race this proves no hidden sharing; the
// repeated-run comparison proves the merged result is a pure function
// of the lane contributions, independent of goroutine scheduling.
func TestHealthMergeDeterministicUnderRace(t *testing.T) {
	const lanes = 16
	combine := func() *fault.Health {
		private := make([]*fault.Health, lanes)
		var wg sync.WaitGroup
		for i := 0; i < lanes; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				private[i] = recordLane(i)
			}(i)
		}
		wg.Wait()
		total := &fault.Health{}
		for _, h := range private {
			total.Merge(h)
		}
		return total
	}
	a, b := combine(), combine()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("merged ledgers differ across runs:\n%+v\n%+v", a, b)
	}
	if a.Rollbacks != lanes || a.Checkpoints != lanes {
		t.Fatalf("merge lost counters: %+v", a)
	}
	if want := lanes / 4; a.Failures() != want {
		t.Fatalf("merge lost failures: got %d, want %d", a.Failures(), want)
	}
	errText := a.Err().Error()
	if errText != b.Err().Error() {
		t.Fatalf("failure order nondeterministic:\n%s\n%s", errText, b.Err().Error())
	}
}
