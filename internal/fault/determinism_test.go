// External test package: exercises the fault layer end to end through
// core and sorting, which the fault package itself must not import.
package fault_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/algorithms/sorting"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/vlsi"
	"repro/internal/workload"
)

// runSort executes SORT-OTN on an 8×8 machine under the given plan and
// returns everything observable about the run: output, finish time,
// sticky error text, and the health counters.
func runSort(t *testing.T, p *fault.Plan, inject bool) ([]int64, vlsi.Time, string, int, int) {
	t.Helper()
	k := 8
	m, err := core.NewDefault(k, k*k)
	if err != nil {
		t.Fatal(err)
	}
	if inject {
		if err := m.InjectFaults(p); err != nil {
			t.Fatalf("InjectFaults(%+v): %v", p, err)
		}
	}
	xs := workload.NewRNG(p.Seed | 1).Perm(k)
	got, done := sorting.SortOTN(m, xs, 0)
	errText := ""
	if e := m.Err(); e != nil {
		errText = e.Error()
	}
	reroutes, transients := 0, 0
	if h := m.Health(); h != nil {
		reroutes, transients = h.Reroutes, h.Transients
	}
	return got, done, errText, reroutes, transients
}

// FuzzPlanDeterminism is the determinism contract of the whole fault
// layer: for ANY (seed, fault count, transient switch) the plan is
// reproducible, and two machines running the same program under it
// agree on output, finish time, error outcome, and health counters.
// A zero-fault plan must further be bit-identical to no plan at all.
func FuzzPlanDeterminism(f *testing.F) {
	f.Add(uint64(0), uint8(0), false)
	f.Add(uint64(7), uint8(1), false)
	f.Add(uint64(1983), uint8(2), true)
	f.Add(uint64(42), uint8(3), true)
	f.Add(uint64(0xDEADBEEF), uint8(5), false)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, transients bool) {
		k := 8
		n := int(nRaw) % 4
		build := func() *fault.Plan {
			p := fault.Random(k, n, seed)
			if transients {
				p = p.WithTransients(0.1)
			}
			return p
		}
		p1, p2 := build(), build()
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("same seed, different plans:\n%+v\n%+v", p1, p2)
		}
		g1, d1, e1, r1, tr1 := runSort(t, p1, true)
		g2, d2, e2, r2, tr2 := runSort(t, p2, true)
		if !reflect.DeepEqual(g1, g2) {
			t.Errorf("outputs differ: %v vs %v", g1, g2)
		}
		if d1 != d2 {
			t.Errorf("finish times differ: %d vs %d", d1, d2)
		}
		if e1 != e2 {
			t.Errorf("error outcomes differ: %q vs %q", e1, e2)
		}
		if r1 != r2 || tr1 != tr2 {
			t.Errorf("health differs: %d/%d vs %d/%d reroutes/transients", r1, tr1, r2, tr2)
		}
		if p1.Empty() {
			g0, d0, e0, _, _ := runSort(t, p1, false)
			if !reflect.DeepEqual(g0, g1) || d0 != d1 || e0 != e1 {
				t.Errorf("empty plan not bit-identical to no plan: time %d vs %d", d1, d0)
			}
		}
	})
}

// TestRandomPlanSiteSpread sanity-checks Random's output shape so the
// fuzz target above is exercising real plans, not degenerate ones.
func TestRandomPlanSiteSpread(t *testing.T) {
	k := 16
	p := fault.Random(k, 8, 99)
	if len(p.DeadEdges) != 8 {
		t.Fatalf("want 8 dead edges, got %d", len(p.DeadEdges))
	}
	if err := p.Validate(k, k); err != nil {
		t.Fatalf("Random produced an invalid plan: %v", err)
	}
	seen := map[string]bool{}
	for _, s := range p.DeadEdges {
		key := fmt.Sprintf("%v/%d/%d", s.Row, s.Tree, s.Node)
		if seen[key] {
			t.Fatalf("duplicate site %s", s)
		}
		seen[key] = true
	}
}
