package fault

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/vlsi"
)

// Health accumulates what one machine observed while executing under
// a fault plan: the static faults it was configured with, every
// transient it caught, every retry and reroute it performed, and the
// bit-times those recoveries added. One Health is shared by a
// machine's routers and primitives; the simulator is single-threaded
// at this layer, so plain counters suffice.
type Health struct {
	// Static configuration, filled at injection time.
	DeadEdges int
	DeadIPs   int
	StuckBPs  int

	// Dynamic observations.
	Transients int // corrupted ascents caught by the parity check
	Retries    int // re-ascents performed after a NACK
	Reroutes   int // words detoured through orthogonal trees

	// RetryLatency and RerouteLatency are the bit-times added by
	// recovery, beyond what the healthy machine would have charged.
	RetryLatency   vlsi.Time
	RerouteLatency vlsi.Time

	// Dynamic-fault recovery, maintained by the checkpoint/rollback
	// supervisor (internal/resilience). Zero on purely static runs.
	Arrivals    int // mid-run fault events merged into the live plan
	Checkpoints int // machine snapshots taken at primitive boundaries
	Rollbacks   int // restores to the last consistent checkpoint
	Healed      int // failures recorded by attempts later rolled back

	// CheckpointOverhead is the bit-times spent writing snapshots;
	// RollbackLatency is discarded work + restore copies + backoff.
	CheckpointOverhead vlsi.Time
	RollbackLatency    vlsi.Time

	errs []error
}

// Checkpoint notes one snapshot and its bit-time cost.
func (h *Health) Checkpoint(cost vlsi.Time) {
	if h == nil {
		return
	}
	h.Checkpoints++
	h.CheckpointOverhead += cost
}

// Arrive notes n mid-run fault arrivals merged into the live plan.
func (h *Health) Arrive(n int) {
	if h != nil {
		h.Arrivals += n
	}
}

// Rollback notes one restore to the last checkpoint and the bit-times
// it added (discarded work + restore copy + backoff), plus how many
// recorded failures the rollback healed.
func (h *Health) Rollback(added vlsi.Time, healed int) {
	if h == nil {
		return
	}
	h.Rollbacks++
	h.RollbackLatency += added
	h.Healed += healed
}

// CutFailures truncates the recorded failures back to the first keep
// entries — the supervisor calls it after a rollback, because errors
// observed by a discarded attempt were never committed — and returns
// how many were dropped.
func (h *Health) CutFailures(keep int) int {
	if h == nil || keep < 0 || keep >= len(h.errs) {
		return 0
	}
	dropped := len(h.errs) - keep
	h.errs = h.errs[:keep]
	return dropped
}

// Merge folds another ledger into h: counters and latencies add,
// failure lists concatenate in call order. Batched lanes and
// supervised replicas each record into a private ledger and merge in
// lane order afterwards, which keeps the combined ledger deterministic
// without sharing memory across goroutines.
func (h *Health) Merge(o *Health) {
	if h == nil || o == nil {
		return
	}
	h.DeadEdges += o.DeadEdges
	h.DeadIPs += o.DeadIPs
	h.StuckBPs += o.StuckBPs
	h.Transients += o.Transients
	h.Retries += o.Retries
	h.Reroutes += o.Reroutes
	h.RetryLatency += o.RetryLatency
	h.RerouteLatency += o.RerouteLatency
	h.Arrivals += o.Arrivals
	h.Checkpoints += o.Checkpoints
	h.Rollbacks += o.Rollbacks
	h.Healed += o.Healed
	h.CheckpointOverhead += o.CheckpointOverhead
	h.RollbackLatency += o.RollbackLatency
	h.errs = append(h.errs, o.errs...)
}

// Reroute notes one word detoured through orthogonal trees and the
// bit-times the detour added.
func (h *Health) Reroute(added vlsi.Time) {
	if h == nil {
		return
	}
	h.Reroutes++
	if added > 0 {
		h.RerouteLatency += added
	}
}

// Fail records an unrecoverable fault outcome (e.g. a retry budget
// exhausted, or an operand isolated beyond repair).
func (h *Health) Fail(err error) {
	if h == nil || err == nil {
		return
	}
	h.errs = append(h.errs, err)
}

// Err returns the recorded unrecoverable outcomes joined into one
// error, or nil if every operation either succeeded or was recovered.
func (h *Health) Err() error {
	if h == nil || len(h.errs) == 0 {
		return nil
	}
	return errors.Join(h.errs...)
}

// Failures returns the number of unrecoverable outcomes recorded.
func (h *Health) Failures() int {
	if h == nil {
		return 0
	}
	return len(h.errs)
}

// AddedLatency is the total recovery cost in bit-times.
func (h *Health) AddedLatency() vlsi.Time {
	if h == nil {
		return 0
	}
	return h.RetryLatency + h.RerouteLatency + h.CheckpointOverhead + h.RollbackLatency
}

// Report renders the health counters as a human-readable block, the
// form cmd/otsim prints after a faulty run.
func (h *Health) Report() string {
	if h == nil {
		return "health: no fault plan injected\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "health: %d dead edge(s), %d dead IP(s), %d stuck BP(s)\n",
		h.DeadEdges, h.DeadIPs, h.StuckBPs)
	fmt.Fprintf(&b, "  transients caught: %d (retries: %d, +%d bit-times)\n",
		h.Transients, h.Retries, int64(h.RetryLatency))
	fmt.Fprintf(&b, "  rerouted words:    %d (+%d bit-times)\n",
		h.Reroutes, int64(h.RerouteLatency))
	if h.Arrivals > 0 || h.Checkpoints > 0 || h.Rollbacks > 0 {
		fmt.Fprintf(&b, "  mid-run arrivals:  %d (merged into the live plan)\n", h.Arrivals)
		fmt.Fprintf(&b, "  checkpoints:       %d (+%d bit-times overhead)\n",
			h.Checkpoints, int64(h.CheckpointOverhead))
		fmt.Fprintf(&b, "  rollbacks:         %d (+%d bit-times replayed, %d failure(s) healed)\n",
			h.Rollbacks, int64(h.RollbackLatency), h.Healed)
	}
	if n := len(h.errs); n > 0 {
		fmt.Fprintf(&b, "  UNRECOVERED: %d failure(s); first: %v\n", n, h.errs[0])
	} else {
		b.WriteString("  all operations completed or recovered\n")
	}
	return b.String()
}

// PlanError reports a fault plan that does not fit the machine it was
// injected into.
type PlanError struct {
	Site   Site
	Reason string
}

func (e *PlanError) Error() string {
	if e.Reason != "" && (e.Site != Site{}) {
		return fmt.Sprintf("fault: invalid plan at %s: %s", e.Site, e.Reason)
	}
	return "fault: invalid plan: " + e.Reason
}

// UnreachableError reports an operation that needed a subtree cut off
// by a dead edge or dead IP and could not be rerouted.
type UnreachableError struct {
	Site Site   // the tree whose cut blocked the operation (Node may be 0 when unknown)
	Op   string // the primitive or router operation that failed
	Leaf int    // the unreachable leaf, -1 when not leaf-specific
}

func (e *UnreachableError) Error() string {
	if e.Leaf >= 0 {
		return fmt.Sprintf("fault: %s: leaf %d of %s unreachable", e.Op, e.Leaf, treeName(e.Site))
	}
	return fmt.Sprintf("fault: %s: %s unreachable", e.Op, treeName(e.Site))
}

func treeName(s Site) string {
	axis := "col"
	if s.Row {
		axis = "row"
	}
	return fmt.Sprintf("%s tree %d", axis, s.Tree)
}

// StormError reports a combining ascent that exhausted its retry
// budget under transient corruption.
type StormError struct {
	Op      string
	Retries int
}

func (e *StormError) Error() string {
	return fmt.Sprintf("fault: %s: parity retry budget (%d) exhausted", e.Op, e.Retries)
}
