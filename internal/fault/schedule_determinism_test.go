// External test package: exercises the fault-schedule layer through
// the recovery supervisor, which the fault package must not import.
package fault_test

import (
	"reflect"
	"testing"

	"repro/internal/algorithms/sorting"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/resilience"
	"repro/internal/vlsi"
	"repro/internal/workload"
)

// recoveryTrace is everything observable about one supervised run:
// the output, the finish time, the error outcome, and the full
// recovery ledger. Two runs of the same seed must agree on all of it.
type recoveryTrace struct {
	Out  []int64
	Done vlsi.Time
	Err  string

	Arrivals, Checkpoints, Rollbacks, Healed int
	Reroutes, Transients, Failures           int
	CheckpointOverhead, RollbackLatency      vlsi.Time
}

// runSupervisedSort executes supervised SORT-OTN on a fresh 8×8
// machine under the given schedule and returns the full trace.
func runSupervisedSort(t *testing.T, sched *fault.Schedule) recoveryTrace {
	t.Helper()
	k := 8
	m, err := core.NewDefault(k, k*k)
	if err != nil {
		t.Fatal(err)
	}
	xs := workload.NewRNG(11).Perm(k)
	prog, out, err := resilience.SortProgram(m, xs)
	if err != nil {
		t.Fatal(err)
	}
	done, rerr := resilience.Run(m, sched, prog, 0, resilience.Options{})
	tr := recoveryTrace{Done: done}
	if rerr != nil {
		tr.Err = rerr.Error()
	} else {
		tr.Out = out()
	}
	if h := m.Health(); h != nil {
		tr.Arrivals, tr.Checkpoints, tr.Rollbacks, tr.Healed = h.Arrivals, h.Checkpoints, h.Rollbacks, h.Healed
		tr.Reroutes, tr.Transients, tr.Failures = h.Reroutes, h.Transients, h.Failures()
		tr.CheckpointOverhead, tr.RollbackLatency = h.CheckpointOverhead, h.RollbackLatency
	}
	return tr
}

// FuzzScheduleDeterminism extends the fault layer's determinism
// contract to dynamic arrivals: for ANY (seed, event count, horizon)
// the derived schedule is reproducible, two supervised runs under it
// produce bit-identical recovery traces — same rollbacks, same added
// bit-times, same ledger — and a zero-event schedule is bit-identical
// to running the program with no supervisor at all.
func FuzzScheduleDeterminism(f *testing.F) {
	f.Add(uint64(0), uint8(0), int64(100))
	f.Add(uint64(7), uint8(1), int64(50))
	f.Add(uint64(1983), uint8(2), int64(200))
	f.Add(uint64(42), uint8(3), int64(1))
	f.Add(uint64(0xDEADBEEF), uint8(5), int64(1000))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, horizonRaw int64) {
		k := 8
		n := int(nRaw) % 4
		horizon := vlsi.Time(horizonRaw % 1000)
		if horizon < 1 {
			horizon = 1
		}
		s1 := fault.RandomSchedule(k, n, horizon, seed)
		s2 := fault.RandomSchedule(k, n, horizon, seed)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("same seed, different schedules:\n%+v\n%+v", s1, s2)
		}
		if err := s1.Validate(k, k); err != nil {
			t.Fatalf("RandomSchedule produced an invalid schedule: %v", err)
		}
		t1 := runSupervisedSort(t, s1)
		t2 := runSupervisedSort(t, s2)
		if !reflect.DeepEqual(t1, t2) {
			t.Errorf("recovery traces differ:\n%+v\n%+v", t1, t2)
		}
		if s1.Empty() {
			m, err := core.NewDefault(k, k*k)
			if err != nil {
				t.Fatal(err)
			}
			xs := workload.NewRNG(11).Perm(k)
			want, done := sorting.SortOTN(m, xs, 0)
			if t1.Done != done || !reflect.DeepEqual(t1.Out, want) {
				t.Errorf("empty schedule not bit-identical to unsupervised run: time %d vs %d", t1.Done, done)
			}
			if t1.Checkpoints != 0 || t1.CheckpointOverhead != 0 {
				t.Errorf("empty schedule engaged checkpoint machinery: %+v", t1)
			}
		}
	})
}

// TestRandomClampsAtEdgeCount pins the termination fix in Random: a
// request at or above the number of distinct dead-edge sites
// (2k(2k−2) for a (k×k)-OTN) clamps instead of rejection-sampling
// forever, and still yields distinct valid sites.
func TestRandomClampsAtEdgeCount(t *testing.T) {
	k := 4
	edges := 2 * k * (2*k - 2)
	for _, ask := range []int{edges, edges + 1, edges * 3} {
		p := fault.Random(k, ask, 5)
		if len(p.DeadEdges) != edges {
			t.Fatalf("Random(k=%d, %d): got %d dead edges, want clamp to %d", k, ask, len(p.DeadEdges), edges)
		}
		if err := p.Validate(k, k); err != nil {
			t.Fatalf("clamped plan invalid: %v", err)
		}
		seen := map[fault.Site]bool{}
		for _, s := range p.DeadEdges {
			if seen[s] {
				t.Fatalf("duplicate site %v in clamped plan", s)
			}
			seen[s] = true
		}
	}
}
