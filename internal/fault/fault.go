// Package fault is the deterministic fault-injection subsystem of the
// OTN/OTC simulator. A Plan describes a set of hardware faults —
// dead tree edges, dead internal processors (IPs), stuck base
// processors (BPs) and a transient bit-flip rate on combining ascents
// — and composes with any machine built over vlsi.Config. Every
// random choice is driven by the same explicit xorshift64* generator
// as internal/workload, so a (seed, plan) pair reproduces the exact
// fault schedule and therefore the exact simulation, bit-time for
// bit-time.
//
// The physical story follows the orthogonal-trees redundancy argument
// (cf. the OTIS fault-tolerance literature in PAPERS.md): every BP
// sits on both a row tree and a column tree, so a single cut tree
// edge never isolates a BP — the routing layers reroute through the
// orthogonal trees at a measurable A·T² cost, and the per-machine
// Health report accounts for every retry and reroute.
//
// Fault classes:
//
//   - Dead edge: the bit-serial link between heap node Node and its
//     parent carries nothing; the whole subtree under Node is cut off
//     from the root.
//   - Dead IP: heap node Node neither combines nor forwards — it cuts
//     its own subtree (and, at the root, the entire tree).
//   - Stuck BP: the base processor's register file is frozen; writes
//     are dropped. (Stuck BPs corrupt results by design — they model
//     the yield problem degraded routing cannot mask.)
//   - Transient: each combining ascent is corrupted with probability
//     TransientRate. Words carry a parity/checksum inside the existing
//     w-bit frame, so detection is free; recovery is a bounded retry
//     (NACK broadcast + re-ascent) whose bit-times are charged in
//     full.
package fault

import (
	"fmt"
	"math"

	"repro/internal/vlsi"
	"repro/internal/workload"
)

// DefaultMaxRetries bounds the parity-retry loop of a combining
// ascent before the router gives up and reports a fault storm.
const DefaultMaxRetries = 3

// Site names one tree node of one tree of a (K×K) machine: the tree
// (row or column, by index) and the heap node within it (node 1 is
// the root, node v has children 2v and 2v+1, leaf j is node K+j).
type Site struct {
	// Row selects a row tree when true, a column tree when false.
	Row bool
	// Tree is the row or column index in [0, K).
	Tree int
	// Node is the heap node index. For a dead edge it names the child
	// end of the dead link (so Node ≥ 2); for a dead IP it names the
	// internal processor (1 ≤ Node < K).
	Node int
}

// String renders the site the way traces and errors print it.
func (s Site) String() string {
	axis := "col"
	if s.Row {
		axis = "row"
	}
	return fmt.Sprintf("%s(%d).node(%d)", axis, s.Tree, s.Node)
}

// BP names one base processor of the K×K base.
type BP struct {
	I, J int
}

// Plan is a complete, machine-independent fault description. The zero
// value (or New with no faults added) is the healthy plan: injecting
// it is guaranteed to leave every code path and every timing
// bit-identical to a machine that never saw a plan.
type Plan struct {
	// Seed drives every pseudo-random decision derived from the plan
	// (transient-corruption schedule, Random site selection).
	Seed uint64
	// DeadEdges lists cut parent links.
	DeadEdges []Site
	// DeadIPs lists dead internal processors.
	DeadIPs []Site
	// StuckBPs lists frozen base processors.
	StuckBPs []BP
	// TransientRate is the per-ascent probability of a transient
	// corruption caught by the parity check, in [0, 1).
	TransientRate float64
	// MaxRetries bounds the parity-retry loop; 0 means
	// DefaultMaxRetries.
	MaxRetries int
}

// New returns an empty (healthy) plan with the given seed.
func New(seed uint64) *Plan { return &Plan{Seed: seed} }

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	return p == nil ||
		(len(p.DeadEdges) == 0 && len(p.DeadIPs) == 0 &&
			len(p.StuckBPs) == 0 && p.TransientRate == 0)
}

// KillEdge adds a dead edge (the link between node and its parent)
// and returns the plan for chaining.
func (p *Plan) KillEdge(row bool, tree, node int) *Plan {
	p.DeadEdges = append(p.DeadEdges, Site{Row: row, Tree: tree, Node: node})
	return p
}

// KillIP adds a dead internal processor.
func (p *Plan) KillIP(row bool, tree, node int) *Plan {
	p.DeadIPs = append(p.DeadIPs, Site{Row: row, Tree: tree, Node: node})
	return p
}

// StickBP freezes the register file of BP(i, j).
func (p *Plan) StickBP(i, j int) *Plan {
	p.StuckBPs = append(p.StuckBPs, BP{I: i, J: j})
	return p
}

// WithTransients sets the per-ascent corruption rate.
func (p *Plan) WithTransients(rate float64) *Plan {
	p.TransientRate = rate
	return p
}

// Retries returns the effective retry bound.
func (p *Plan) Retries() int {
	if p == nil || p.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return p.MaxRetries
}

// Validate checks every site against a machine with k trees per axis
// of treeK leaves each (treeK is k for the native OTN; emulated
// machines pass the physical tree's leaf count).
func (p *Plan) Validate(k, treeK int) error {
	if p == nil {
		return nil
	}
	for _, s := range p.DeadEdges {
		if s.Tree < 0 || s.Tree >= k {
			return &PlanError{Site: s, Reason: fmt.Sprintf("tree index out of range [0,%d)", k)}
		}
		if s.Node < 2 || s.Node >= 2*treeK {
			return &PlanError{Site: s, Reason: fmt.Sprintf("edge node out of range [2,%d)", 2*treeK)}
		}
	}
	for _, s := range p.DeadIPs {
		if s.Tree < 0 || s.Tree >= k {
			return &PlanError{Site: s, Reason: fmt.Sprintf("tree index out of range [0,%d)", k)}
		}
		if s.Node < 1 || s.Node >= treeK {
			return &PlanError{Site: s, Reason: fmt.Sprintf("IP node out of range [1,%d)", treeK)}
		}
	}
	for _, b := range p.StuckBPs {
		if b.I < 0 || b.I >= k || b.J < 0 || b.J >= k {
			return &PlanError{Reason: fmt.Sprintf("stuck BP(%d,%d) outside the %d×%d base", b.I, b.J, k, k)}
		}
	}
	if p.TransientRate < 0 || p.TransientRate >= 1 {
		return &PlanError{Reason: fmt.Sprintf("transient rate %v outside [0,1)", p.TransientRate)}
	}
	return nil
}

// Random returns a plan of nFaults distinct dead tree edges scattered
// uniformly over the 2k trees of a (k×k)-OTN, derived entirely from
// the seed. The same (k, nFaults, seed) triple always yields the same
// plan. nFaults is clamped to the 2k(2k−2) distinct edges a
// (k×k)-OTN has — asking for more cannot produce more distinct sites,
// only a rejection-sampling livelock.
func Random(k, nFaults int, seed uint64) *Plan {
	if edges := 2 * k * (2*k - 2); nFaults > edges {
		nFaults = edges
	}
	p := New(seed)
	rng := workload.NewRNG(seed)
	seen := make(map[Site]bool, nFaults)
	for len(p.DeadEdges) < nFaults {
		s := Site{
			Row:  rng.Intn(2) == 0,
			Tree: rng.Intn(k),
			// Edges are identified by their child node, in [2, 2k).
			Node: 2 + rng.Intn(2*k-2),
		}
		if seen[s] {
			continue
		}
		seen[s] = true
		p.DeadEdges = append(p.DeadEdges, s)
	}
	return p
}

// Union returns a new plan combining p's faults with q's,
// deduplicating sites. The seed, in-order site layout and retry bound
// come from p (the live plan); q's transient rate and retry bound win
// only where larger. Union is how a mid-run arrival merges into a
// machine's live plan without disturbing what was already injected.
func (p *Plan) Union(q *Plan) *Plan {
	out := New(p.Seed)
	out.TransientRate = p.TransientRate
	if q.TransientRate > out.TransientRate {
		out.TransientRate = q.TransientRate
	}
	out.MaxRetries = p.MaxRetries
	if q.MaxRetries > out.MaxRetries {
		out.MaxRetries = q.MaxRetries
	}
	seenSite := make(map[Site]bool, len(p.DeadEdges)+len(q.DeadEdges))
	for _, s := range append(append([]Site{}, p.DeadEdges...), q.DeadEdges...) {
		if !seenSite[s] {
			seenSite[s] = true
			out.DeadEdges = append(out.DeadEdges, s)
		}
	}
	seenIP := make(map[Site]bool, len(p.DeadIPs)+len(q.DeadIPs))
	for _, s := range append(append([]Site{}, p.DeadIPs...), q.DeadIPs...) {
		if !seenIP[s] {
			seenIP[s] = true
			out.DeadIPs = append(out.DeadIPs, s)
		}
	}
	seenBP := make(map[BP]bool, len(p.StuckBPs)+len(q.StuckBPs))
	for _, b := range append(append([]BP{}, p.StuckBPs...), q.StuckBPs...) {
		if !seenBP[b] {
			seenBP[b] = true
			out.StuckBPs = append(out.StuckBPs, b)
		}
	}
	return out
}

// TreeFaults is the per-tree projection of a plan: what one row or
// column tree's router (and its goroutine twin in
// internal/concurrent) needs to know. A nil *TreeFaults means the
// tree is healthy.
type TreeFaults struct {
	k          int
	deadUp     []bool // parent edge of node v is dead
	deadIP     []bool // internal processor v is dead
	rate       float64
	maxRetries int
	key        uint64
	health     *Health
}

// ForTree projects the plan onto one tree of treeK leaves. It returns
// nil when the tree has no dead hardware and the plan has no
// transient rate — the contract that keeps the healthy fast paths
// byte-identical. All views share the machine's Health.
func (p *Plan) ForTree(row bool, tree, treeK int, h *Health) *TreeFaults {
	if p.Empty() {
		return nil
	}
	f := &TreeFaults{
		k:          treeK,
		rate:       p.TransientRate,
		maxRetries: p.Retries(),
		key:        treeKey(p.Seed, row, tree),
		health:     h,
	}
	any := false
	for _, s := range p.DeadEdges {
		if s.Row == row && s.Tree == tree && s.Node >= 2 && s.Node < 2*treeK {
			f.ensure()
			f.deadUp[s.Node] = true
			any = true
		}
	}
	for _, s := range p.DeadIPs {
		if s.Row == row && s.Tree == tree && s.Node >= 1 && s.Node < treeK {
			f.ensure()
			f.deadIP[s.Node] = true
			// A dead IP forwards nothing: its parent link and both
			// child links go silent.
			if s.Node >= 2 {
				f.deadUp[s.Node] = true
			}
			f.deadUp[2*s.Node] = true
			f.deadUp[2*s.Node+1] = true
			any = true
		}
	}
	if !any && f.rate == 0 {
		return nil
	}
	return f
}

func (f *TreeFaults) ensure() {
	if f.deadUp == nil {
		f.deadUp = make([]bool, 2*f.k)
		f.deadIP = make([]bool, 2*f.k)
	}
}

// treeKey mixes the plan seed with the tree identity so every tree
// draws an independent (but reproducible) transient schedule.
func treeKey(seed uint64, row bool, tree int) uint64 {
	x := seed ^ 0x9E3779B97F4A7C15
	if row {
		x ^= 0xA5A5A5A5A5A5A5A5
	}
	x += uint64(tree) * 0xBF58476D1CE4E5B9
	return mix(x)
}

// mix is the splitmix64 finalizer: a cheap bijective hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// K returns the number of leaves of the viewed tree.
func (f *TreeFaults) K() int { return f.k }

// Dead reports whether the view cuts any hardware (as opposed to a
// transient-only view).
func (f *TreeFaults) Dead() bool { return f != nil && f.deadUp != nil }

// HasTransients reports whether the view carries a nonzero transient
// corruption rate. Routers use this to decide whether a traversal is
// schedulable: transient draws consume the monotone ascent counter,
// so a traversal under a transient view is never replayed from a
// recording.
func (f *TreeFaults) HasTransients() bool { return f != nil && f.rate != 0 }

// Fingerprint hashes the complete fault view — topology, rate, retry
// budget, and the per-tree corruption key — into a nonzero value that
// is equal exactly when two views would produce identical routing and
// corruption behaviour. The nil view (healthy) hashes to 0, so a
// fingerprint doubles as a "has any view" flag.
func (f *TreeFaults) Fingerprint() uint64 {
	if f == nil {
		return 0
	}
	h := mix(uint64(f.k)<<32 ^ uint64(f.maxRetries)<<1 ^ 1)
	h = mix(h ^ math.Float64bits(f.rate))
	h = mix(h ^ f.key)
	for v, d := range f.deadUp {
		if d {
			h = mix(h ^ uint64(v)<<1 ^ 0x5D)
		}
	}
	for v, d := range f.deadIP {
		if d {
			h = mix(h ^ uint64(v)<<1 ^ 0x1F)
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// EdgeDead reports whether the link between node v and its parent is
// dead.
func (f *TreeFaults) EdgeDead(v int) bool {
	return f != nil && f.deadUp != nil && v >= 0 && v < len(f.deadUp) && f.deadUp[v]
}

// IPDead reports whether internal processor v is dead.
func (f *TreeFaults) IPDead(v int) bool {
	return f != nil && f.deadIP != nil && v >= 0 && v < len(f.deadIP) && f.deadIP[v]
}

// MaxRetries returns the parity-retry bound.
func (f *TreeFaults) MaxRetries() int {
	if f == nil || f.maxRetries <= 0 {
		return DefaultMaxRetries
	}
	return f.maxRetries
}

// Health returns the shared health counters (never nil on a view
// produced by ForTree with a non-nil Health; may be nil on hand-built
// views, so callers use the Record* helpers below).
func (f *TreeFaults) Health() *Health {
	if f == nil {
		return nil
	}
	return f.health
}

// CorruptAscent decides — deterministically, from the plan seed, the
// tree identity and the ascent's sequence number — whether combining
// ascent op of this tree suffers a transient corruption. The decision
// depends on nothing else, so a simulation replay sees the identical
// fault schedule regardless of call interleaving across trees.
func (f *TreeFaults) CorruptAscent(op uint64) bool {
	if f == nil || f.rate == 0 {
		return false
	}
	x := mix(f.key + op*0x2545F4914F6CDD1D)
	return float64(x>>11)/(1<<53) < f.rate
}

// RecordTransient notes one detected corruption.
func (f *TreeFaults) RecordTransient() {
	if f != nil && f.health != nil {
		f.health.Transients++
	}
}

// RecordRetry notes one parity retry and the bit-times it added.
func (f *TreeFaults) RecordRetry(added vlsi.Time) {
	if f != nil && f.health != nil {
		f.health.Retries++
		f.health.RetryLatency += added
	}
}

// RecordFailure notes an unrecoverable fault outcome.
func (f *TreeFaults) RecordFailure(err error) {
	if f != nil && f.health != nil {
		f.health.Fail(err)
	}
}
