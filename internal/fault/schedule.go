package fault

import (
	"fmt"
	"sort"

	"repro/internal/vlsi"
	"repro/internal/workload"
)

// Event is one dynamic fault arrival: at simulated bit-time At, the
// tree edge named by Site (its child node) dies. Events model the
// mid-run link failures the static Plan cannot: the hardware was
// healthy when the computation started and broke while words were in
// flight.
type Event struct {
	// At is the simulated bit-time of the failure. Events with At in
	// (stepStart, stepEnd] strike *during* a primitive and force a
	// rollback; events with At ≤ stepStart are merged between
	// primitives at no cost beyond the degraded routing itself.
	At vlsi.Time
	// Site names the dead edge by its child node, exactly as
	// Plan.DeadEdges does.
	Site Site
}

// Schedule is a seed-reproducible, time-ordered list of fault
// arrivals. The zero-event schedule is the healthy contract: running
// a computation under it must be bit-identical — times, results,
// allocations — to running it with no supervisor at all (the same
// free-when-empty discipline the empty Plan obeys).
type Schedule struct {
	// Seed is carried into the plans built from delivered events, so
	// transient schedules stay reproducible after a merge.
	Seed uint64
	// Events, sorted by (At, Site). Validate rejects unsorted
	// schedules: delivery order is part of the deterministic trace.
	Events []Event
}

// NewSchedule returns an empty schedule with the given seed.
func NewSchedule(seed uint64) *Schedule { return &Schedule{Seed: seed} }

// Empty reports whether the schedule delivers no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// Add appends an arrival; call Sort (or build in order) before use.
func (s *Schedule) Add(at vlsi.Time, site Site) *Schedule {
	s.Events = append(s.Events, Event{At: at, Site: site})
	return s
}

// Sort orders events by (At, Row, Tree, Node) — the canonical
// delivery order Validate requires.
func (s *Schedule) Sort() *Schedule {
	sort.Slice(s.Events, func(i, j int) bool {
		return eventLess(s.Events[i], s.Events[j])
	})
	return s
}

func eventLess(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Site.Row != b.Site.Row {
		return a.Site.Row
	}
	if a.Site.Tree != b.Site.Tree {
		return a.Site.Tree < b.Site.Tree
	}
	return a.Site.Node < b.Site.Node
}

// Validate checks every arrival against a machine with k trees per
// axis of treeK leaves each, reusing the Plan site rules: an event
// site must be a legal dead edge. It also rejects negative times and
// out-of-order events, because delivery order is part of the
// deterministic recovery trace.
func (s *Schedule) Validate(k, treeK int) error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if e.At < 0 {
			return &PlanError{Site: e.Site, Reason: fmt.Sprintf("event %d arrives at negative time %d", i, int64(e.At))}
		}
		if i > 0 && eventLess(e, s.Events[i-1]) {
			return &PlanError{Site: e.Site, Reason: fmt.Sprintf("event %d out of order (schedules must be sorted by arrival)", i)}
		}
		p := Plan{DeadEdges: []Site{e.Site}}
		if err := p.Validate(k, treeK); err != nil {
			return err
		}
	}
	return nil
}

// PlanAt builds the single-event plan for one delivered arrival,
// carrying the schedule seed so downstream transient draws stay
// reproducible.
func (s *Schedule) PlanAt(i int) *Plan {
	return New(s.Seed).KillEdge(s.Events[i].Site.Row, s.Events[i].Site.Tree, s.Events[i].Site.Node)
}

// RandomSchedule scatters n distinct dead-edge arrivals uniformly
// over the 2k trees of a (k×k)-OTN and over simulated times in
// [1, horizon], derived entirely from the seed. The same
// (k, n, horizon, seed) quadruple always yields the same schedule.
// Like Random, n is clamped to the number of distinct edges.
func RandomSchedule(k, n int, horizon vlsi.Time, seed uint64) *Schedule {
	if horizon < 1 {
		horizon = 1
	}
	sites := Random(k, n, seed).DeadEdges
	rng := workload.NewRNG(mix(seed ^ 0xD1B54A32D192ED03))
	s := NewSchedule(seed)
	for _, site := range sites {
		s.Add(1+vlsi.Time(rng.Intn(int(horizon))), site)
	}
	return s.Sort()
}
