package cube

import (
	"fmt"

	"repro/internal/vlsi"
)

// Null mirrors the distinguished "no value" word of the OTN programs.
const Null int64 = -1 << 62

// Registers of the CONNECT program.
const (
	regAdj  = "adj"
	regDu   = "Du"
	regDv   = "Dv"
	regCand = "cand"
	regC    = "C"
	regT    = "T"
	regTmp  = "tmp"
)

// LoadAdjacency stores the N-vertex adjacency matrix, one entry per
// PE in row-major order (PE v·N+u holds A(v,u)). The machine must
// have exactly N² processors.
func (m *Machine) LoadAdjacency(adj [][]int64) int {
	n := len(adj)
	if n*n != m.P {
		panic(fmt.Sprintf("cube: %d-vertex adjacency on %d PEs", n, m.P))
	}
	bank := m.bank(regAdj)
	for v := 0; v < n; v++ {
		copy(bank[v*n:(v+1)*n], adj[v])
	}
	return n
}

// Connect runs the Hirschberg–Chandra–Sarwate CONNECT algorithm on
// the adjacency matrix previously stored with LoadAdjacency: the same
// hook-to-minimum + cycle-break + pointer-jumping scheme as the OTN
// implementation (internal/algorithms/graph), with every
// communication realized by hypercube sweeps and permutation routes
// priced by the host network's DimCost. It returns the component
// labels and the completion time.
func (m *Machine) Connect(n int, rel vlsi.Time) ([]int64, vlsi.Time) {
	if n*n != m.P {
		panic(fmt.Sprintf("cube: Connect over %d vertices on %d PEs", n, m.P))
	}
	low := vlsi.Log2Floor(n)
	d := make([]int64, n)
	for v := range d {
		d[v] = int64(v)
	}
	t := rel
	for round := 0; round < vlsi.Log2Ceil(n)+2; round++ {
		var changed bool
		d, t, changed = m.connectRound(n, low, d, t)
		if !changed {
			break
		}
	}
	return d, t
}

func (m *Machine) connectRound(n, low int, d []int64, rel vlsi.Time) ([]int64, vlsi.Time, bool) {
	// Distribute labels: PE (v,u) needs D(u) and D(v). The labels
	// live logically on the diagonal PEs; each distribution is one
	// permutation route (fetch from PE (u,u) resp. (v,v)).
	du := m.bank(regDu)
	dv := m.bank(regDv)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			p := v*n + u
			du[p] = d[u]
			dv[p] = d[v]
		}
	}
	t := m.chargePermute(rel)
	t = m.chargePermute(t)

	// Candidate at PE (v,u): D(u) if the edge leaves v's component.
	adj := m.bank(regAdj)
	cand := m.bank(regCand)
	for p := 0; p < m.P; p++ {
		if adj[p] == 1 && du[p] != dv[p] {
			cand[p] = du[p]
		} else {
			cand[p] = Null
		}
	}
	t += vlsi.Time(m.WordBits)

	// C(v): row minimum (low dims).
	t = m.SegReduceMin(low, regCand, regC, t)
	c := m.bank(regC)
	cOf := make([]int64, n)
	for v := 0; v < n; v++ {
		cOf[v] = c[v*n]
	}

	// T(s): PE (s,j) fetches C(j) (a permutation route), masks rows
	// not labelled s, and the row minimum delivers T(s).
	tmp := m.bank(regTmp)
	for s := 0; s < n; s++ {
		for j := 0; j < n; j++ {
			p := s*n + j
			if d[j] == int64(s) {
				tmp[p] = cOf[j]
			} else {
				tmp[p] = Null
			}
		}
	}
	t = m.chargePermute(t)
	t += vlsi.Time(m.WordBits)
	t = m.SegReduceMin(low, regTmp, regT, t)
	tt := m.bank(regT)
	hook := make([]int64, n)
	for s := 0; s < n; s++ {
		hook[s] = tt[s*n]
	}

	// Hook with the 2-cycle break (identical reasoning to the OTN
	// version: min-hooking admits only mutual pairs).
	newD := append([]int64(nil), d...)
	changed := false
	for s := 0; s < n; s++ {
		if d[s] != int64(s) || hook[s] == Null {
			continue
		}
		e := hook[s]
		if hook[e] == int64(s) && int64(s) < e {
			continue
		}
		newD[s] = e
		changed = true
	}
	t = m.chargePermute(t) // resolving E(E(s)) is one more route

	// Pointer jumping: each jump is a permutation fetch D(D(v)).
	for j := 0; j < vlsi.Log2Ceil(n); j++ {
		prev := append([]int64(nil), newD...)
		for v := 0; v < n; v++ {
			newD[v] = prev[prev[v]]
		}
		t = m.chargePermute(t)
	}
	return newD, t, changed
}

// chargePermute charges the two-sweep cost of one permutation route
// without moving data (used where the program's data plane is the
// host slice d itself).
func (m *Machine) chargePermute(rel vlsi.Time) vlsi.Time {
	t := rel
	for pass := 0; pass < 2; pass++ {
		for d := 0; d < m.dims; d++ {
			t += m.DimCost(d) + vlsi.Time(m.WordBits)
		}
	}
	return t
}
