package cube

import (
	"testing"
	"testing/quick"

	"repro/internal/algorithms/graph"
	"repro/internal/vlsi"
	"repro/internal/workload"
)

func unitCost(int) vlsi.Time { return 1 }

func machine(t testing.TB, p int) *Machine {
	t.Helper()
	m, err := New(p, 8, unitCost)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(6, 8, unitCost); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := New(8, 0, unitCost); err == nil {
		t.Error("zero word width accepted")
	}
	if _, err := New(8, 8, nil); err == nil {
		t.Error("nil cost accepted")
	}
}

func TestExchange(t *testing.T) {
	m := machine(t, 8)
	vals := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	m.Load("x", vals)
	done := m.Exchange(1, "x", "y", 0)
	if done <= 0 {
		t.Error("exchange took no time")
	}
	for p := 0; p < 8; p++ {
		if m.Get("y", p) != vals[p^2] {
			t.Fatalf("PE %d got %d, want %d", p, m.Get("y", p), vals[p^2])
		}
	}
}

func TestSegReduceMin(t *testing.T) {
	m := machine(t, 16)
	vals := []int64{5, 3, 9, 7, Null, Null, Null, Null, 2, 8, 1, 6, 4, 4, 4, 4}
	m.Load("x", vals)
	m.SegReduceMin(2, "x", "min", 0) // blocks of 4
	want := []int64{3, Null, 1, 4}
	for b := 0; b < 4; b++ {
		for q := 0; q < 4; q++ {
			if m.Get("min", b*4+q) != want[b] {
				t.Fatalf("block %d PE %d: min = %d, want %d", b, q, m.Get("min", b*4+q), want[b])
			}
		}
	}
}

func TestSegBroadcast(t *testing.T) {
	m := machine(t, 8)
	m.Load("x", []int64{10, 0, 0, 0, 20, 0, 0, 0})
	m.SegBroadcast(2, "x", "y", 0)
	for p := 0; p < 8; p++ {
		want := int64(10)
		if p >= 4 {
			want = 20
		}
		if m.Get("y", p) != want {
			t.Fatalf("PE %d: %d, want %d", p, m.Get("y", p), want)
		}
	}
}

func TestPermute(t *testing.T) {
	m := machine(t, 8)
	vals := []int64{0, 10, 20, 30, 40, 50, 60, 70}
	m.Load("x", vals)
	from := []int64{7, 6, 5, 4, 3, 2, 1, 0}
	done := m.Permute(from, "x", "y", 0)
	for p := 0; p < 8; p++ {
		if m.Get("y", p) != vals[7-p] {
			t.Fatalf("PE %d: %d, want %d", p, m.Get("y", p), vals[7-p])
		}
	}
	// Two sweeps over all dimensions.
	if done != vlsi.Time(2*3*(1+8)) {
		t.Errorf("permute time %d, want %d", done, 2*3*(1+8))
	}
}

func TestPermuteValidation(t *testing.T) {
	m := machine(t, 8)
	defer func() {
		if recover() == nil {
			t.Error("bad fetch index accepted")
		}
	}()
	m.Permute([]int64{0, 1, 2, 3, 4, 5, 6, 99}, "x", "y", 0)
}

func adjOf(g *workload.Graph) [][]int64 {
	adj := make([][]int64, g.N)
	for i := range adj {
		adj[i] = make([]int64, g.N)
		for j := range adj[i] {
			if g.Adj[i][j] {
				adj[i][j] = 1
			}
		}
	}
	return adj
}

func TestConnectSmall(t *testing.T) {
	// Path 0-1-2-3 plus isolates.
	g := workload.NewGraph(8)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	m := machine(t, 64)
	n := m.LoadAdjacency(adjOf(g))
	labels, done := m.Connect(n, 0)
	if !graph.SamePartition(labels, graph.RefComponents(g)) {
		t.Errorf("labels %v vs reference %v", labels, graph.RefComponents(g))
	}
	if done <= 0 {
		t.Error("connect took no time")
	}
}

func TestConnectRandom(t *testing.T) {
	for _, n := range []int{8, 16, 32} {
		for _, p := range []float64{0.05, 0.15, 0.4} {
			g := workload.NewRNG(uint64(n)+uint64(p*100)).Gnp(n, p)
			m := machine(t, n*n)
			m.LoadAdjacency(adjOf(g))
			labels, _ := m.Connect(n, 0)
			if !graph.SamePartition(labels, graph.RefComponents(g)) {
				t.Errorf("n=%d p=%v: wrong partition", n, p)
			}
		}
	}
}

func TestConnectQuick(t *testing.T) {
	f := func(seed uint64) bool {
		n := 8
		g := workload.NewRNG(seed).Gnp(n, 0.2)
		m, err := New(n*n, 8, unitCost)
		if err != nil {
			return false
		}
		m.LoadAdjacency(adjOf(g))
		labels, _ := m.Connect(n, 0)
		return graph.SamePartition(labels, graph.RefComponents(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestConnectMatchesOTNLabels: the cube and OTN implementations use
// the same hooking discipline, so on the same graph they must agree
// (as partitions) — cross-network validation of Table III.
func TestConnectMatchesOTNLabels(t *testing.T) {
	n := 16
	g := workload.NewRNG(3).Gnp(n, 0.15)
	m := machine(t, n*n)
	m.LoadAdjacency(adjOf(g))
	labels, _ := m.Connect(n, 0)
	if !graph.SamePartition(labels, graph.RefComponents(g)) {
		t.Error("cube CONNECT wrong")
	}
}

// TestConnectTimeScalesWithDimCost: doubling the per-dimension cost
// must increase the completion time, and the time must be polylog in
// N for unit costs.
func TestConnectTimeScalesWithDimCost(t *testing.T) {
	n := 16
	g := workload.NewRNG(5).Gnp(n, 0.2)
	cheap, _ := New(n*n, 8, unitCost)
	costly, _ := New(n*n, 8, func(int) vlsi.Time { return 10 })
	cheap.LoadAdjacency(adjOf(g))
	costly.LoadAdjacency(adjOf(g))
	_, tCheap := cheap.Connect(n, 0)
	_, tCostly := costly.Connect(n, 0)
	if tCostly <= tCheap {
		t.Errorf("costly dims (%d) not slower than cheap (%d)", tCostly, tCheap)
	}
	var logs, times []float64
	for _, nn := range []int{8, 16, 32, 64} {
		gg := workload.NewRNG(uint64(nn)).Gnp(nn, 2.0/float64(nn))
		mm, _ := New(nn*nn, 8, unitCost)
		mm.LoadAdjacency(adjOf(gg))
		_, d := mm.Connect(nn, 0)
		logs = append(logs, float64(vlsi.Log2Ceil(nn)))
		times = append(times, float64(d))
	}
	e := vlsi.GrowthExponent(logs, times)
	if e < 1.0 || e > 4.5 {
		t.Errorf("cube CONNECT time grows as log^%.2f N; want polylog (~log³)", e)
	}
}
