// Package cube implements an abstract hypercube SIMD machine with
// pluggable per-dimension communication costs. It exists so the
// PSN and CCC rows of the paper's tables can be produced by *running*
// the cited algorithms rather than by formula: both networks execute
// hypercube programs — the shuffle-exchange by rotating the address
// bits through the exchange position (Stone [25]), the CCC by its
// ASCEND/DESCEND emulation (Preparata–Vuillemin [23]) — and each
// prices a dimension-d exchange differently. The DNS matrix product
// already follows this pattern (internal/algorithms/matrix.DNSSchedule);
// this package adds the general register machine plus the
// Hirschberg–Chandra–Sarwate CONNECT algorithm [12] used by
// Table III.
//
// All operations are functional (registers really move) and timed:
// every dimension step charges DimCost(d) for the wire plus the
// bit-serial operation.
package cube

import (
	"fmt"

	"repro/internal/vlsi"
)

// Machine is a 2^dims-processor hypercube register machine.
type Machine struct {
	// P is the number of processors, dims its log.
	P, dims int
	// WordBits is the word width of every register.
	WordBits int
	// DimCost prices one communication step along dimension d on the
	// host network (shuffle cycle, CCC cycle rotation or cube wire).
	DimCost func(d int) vlsi.Time

	regs map[string][]int64
}

// New builds a hypercube machine over p processors (a power of two).
func New(p, wordBits int, dimCost func(d int) vlsi.Time) (*Machine, error) {
	if !vlsi.IsPow2(p) || p < 2 {
		return nil, fmt.Errorf("cube: %d processors; want a power of two ≥ 2", p)
	}
	if wordBits < 1 {
		return nil, fmt.Errorf("cube: word width %d", wordBits)
	}
	if dimCost == nil {
		return nil, fmt.Errorf("cube: nil dimension cost")
	}
	return &Machine{
		P:        p,
		dims:     vlsi.Log2Floor(p),
		WordBits: wordBits,
		DimCost:  dimCost,
		regs:     map[string][]int64{},
	}, nil
}

// Dims returns the cube dimension count.
func (m *Machine) Dims() int { return m.dims }

// bank returns (allocating if needed) a register over all PEs.
func (m *Machine) bank(r string) []int64 {
	b, ok := m.regs[r]
	if !ok {
		b = make([]int64, m.P)
		m.regs[r] = b
	}
	return b
}

// Get reads register r of PE p.
func (m *Machine) Get(r string, p int) int64 { return m.bank(r)[p] }

// Set writes register r of PE p.
func (m *Machine) Set(r string, p int, v int64) { m.bank(r)[p] = v }

// Load fills register r from a slice.
func (m *Machine) Load(r string, vals []int64) {
	if len(vals) != m.P {
		panic(fmt.Sprintf("cube: loading %d values into %d PEs", len(vals), m.P))
	}
	copy(m.bank(r), vals)
}

// Dump copies register r out.
func (m *Machine) Dump(r string) []int64 {
	return append([]int64(nil), m.bank(r)...)
}

// Exchange performs one SIMD step along dimension d: every PE p
// receives register r of its neighbour p^2^d into register dst. Cost:
// one dimension step plus the word.
func (m *Machine) Exchange(d int, r, dst string, rel vlsi.Time) vlsi.Time {
	if d < 0 || d >= m.dims {
		panic(fmt.Sprintf("cube: dimension %d of %d", d, m.dims))
	}
	src := m.bank(r)
	out := m.bank(dst)
	stride := 1 << uint(d)
	for p := 0; p < m.P; p++ {
		out[p] = src[p^stride]
	}
	return rel + m.DimCost(d) + vlsi.Time(m.WordBits)
}

// minIgnoringNull combines two words under the MIN-with-Null
// convention used throughout the graph programs.
func minIgnoringNull(a, b int64) int64 {
	const null = -1 << 62
	if a <= null {
		return b
	}
	if b <= null {
		return a
	}
	if b < a {
		return b
	}
	return a
}

// SegReduceMin computes, within every aligned block of 2^lowDims
// consecutive PEs, the minimum of register r (Null entries ignored)
// and leaves it in register dst of every PE of the block — an ASCEND
// sweep over the low dimensions followed by the mirroring DESCEND
// broadcast, the standard hypercube segmented reduction.
func (m *Machine) SegReduceMin(lowDims int, r, dst string, rel vlsi.Time) vlsi.Time {
	if lowDims < 0 || lowDims > m.dims {
		panic(fmt.Sprintf("cube: segment of %d dims in a %d-cube", lowDims, m.dims))
	}
	acc := m.bank(dst)
	copy(acc, m.bank(r))
	t := rel
	for d := 0; d < lowDims; d++ {
		stride := 1 << uint(d)
		next := make([]int64, m.P)
		for p := 0; p < m.P; p++ {
			next[p] = minIgnoringNull(acc[p], acc[p^stride])
		}
		copy(acc, next)
		t += m.DimCost(d) + vlsi.Time(m.WordBits)
	}
	return t
}

// SegBroadcast copies register r of each block's leader (the PE whose
// low bits are zero) into dst of the whole block — a DESCEND sweep.
func (m *Machine) SegBroadcast(lowDims int, r, dst string, rel vlsi.Time) vlsi.Time {
	if lowDims < 0 || lowDims > m.dims {
		panic(fmt.Sprintf("cube: segment of %d dims in a %d-cube", lowDims, m.dims))
	}
	src := m.bank(r)
	out := m.bank(dst)
	mask := (1 << uint(lowDims)) - 1
	t := rel
	for p := 0; p < m.P; p++ {
		out[p] = src[p&^mask]
	}
	for d := lowDims - 1; d >= 0; d-- {
		t += m.DimCost(d) + vlsi.Time(m.WordBits)
	}
	return t
}

// Permute realizes an arbitrary permutation/fetch: every PE p
// receives register r of PE from[p] into dst. A hypercube routes any
// such pattern in two dimension sweeps (Beneš), so the charge is
// 2·dims dimension steps; the data movement itself is exact.
func (m *Machine) Permute(from []int64, r, dst string, rel vlsi.Time) vlsi.Time {
	if len(from) != m.P {
		panic(fmt.Sprintf("cube: permutation of length %d on %d PEs", len(from), m.P))
	}
	src := m.bank(r)
	out := m.bank(dst)
	for p := 0; p < m.P; p++ {
		f := from[p]
		if f < 0 || int(f) >= m.P {
			panic(fmt.Sprintf("cube: fetch index %d out of range", f))
		}
		out[p] = src[f]
	}
	t := rel
	for pass := 0; pass < 2; pass++ {
		for d := 0; d < m.dims; d++ {
			t += m.DimCost(d) + vlsi.Time(m.WordBits)
		}
	}
	return t
}
