package ccc

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vlsi"
	"repro/internal/workload"
)

func machine(t testing.TB, n int) *Machine {
	t.Helper()
	c, err := New(n, vlsi.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(6, vlsi.DefaultConfig(8)); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := New(8, vlsi.Config{}); err == nil {
		t.Error("bad config accepted")
	}
}

func sortedCopy(xs []int64) []int64 {
	out := append([]int64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestBitonicSort(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64, 256} {
		c := machine(t, n)
		xs := workload.NewRNG(uint64(n)).Ints(n, 1000)
		got, done := c.BitonicSort(xs, 0)
		want := sortedCopy(xs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("N=%d: CCC bitonic wrong", n)
			}
		}
		if done <= 0 {
			t.Error("sort took no time")
		}
	}
}

func TestBitonicSortQuick(t *testing.T) {
	c := machine(t, 64)
	f := func(seed uint64) bool {
		xs := workload.NewRNG(seed).Ints(64, 500)
		got, _ := c.BitonicSort(xs, 0)
		want := sortedCopy(xs)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDimTimeGrows(t *testing.T) {
	c := machine(t, 1024)
	// High cube dimensions cross longer wires than low cycle
	// rotations under the log-delay model.
	low := c.DimTime(0)
	high := c.DimTime(c.m - 1)
	if high <= low {
		t.Errorf("dim time not growing: d0=%d, dmax=%d", low, high)
	}
}

// TestSortTimePolylog: Θ(log³ N) under log-delay.
func TestSortTimePolylog(t *testing.T) {
	var logs, times []float64
	for n := 16; n <= 4096; n *= 4 {
		c := machine(t, n)
		xs := workload.NewRNG(uint64(n)).Ints(n, 1<<20)
		_, done := c.BitonicSort(xs, 0)
		logs = append(logs, float64(vlsi.Log2Ceil(n)))
		times = append(times, float64(done))
	}
	e := vlsi.GrowthExponent(logs, times)
	if e < 1.5 || e > 4.0 {
		t.Errorf("CCC sort time grows as log^%.2f N; want ~log³", e)
	}
}

// TestConstantDelayModelFaster: the Section VII-D comparison — the
// same algorithm drops to Θ(log² N) without wire delays.
func TestConstantDelayModelFaster(t *testing.T) {
	n := 1024
	xs := workload.NewRNG(3).Ints(n, 1000)
	cLog, _ := New(n, vlsi.Config{WordBits: vlsi.WordBitsFor(n), Model: vlsi.LogDelay{}})
	cConst, _ := New(n, vlsi.Config{WordBits: vlsi.WordBitsFor(n), Model: vlsi.ConstantDelay{}})
	_, dLog := cLog.BitonicSort(xs, 0)
	_, dConst := cConst.BitonicSort(xs, 0)
	if dConst >= dLog {
		t.Errorf("constant-delay CCC sort (%d) not faster than log-delay (%d)", dConst, dLog)
	}
}

func TestAscendSteps(t *testing.T) {
	c := machine(t, 256)
	if c.AscendSteps() <= 0 {
		t.Error("ascend sweep costs nothing")
	}
	// A full sweep costs at least one dim-time per dimension.
	if c.AscendSteps() < vlsi.Time(c.m) {
		t.Error("ascend sweep implausibly cheap")
	}
}

func TestArity(t *testing.T) {
	c := machine(t, 8)
	defer func() {
		if recover() == nil {
			t.Error("wrong input length accepted")
		}
	}()
	c.BitonicSort(make([]int64, 5), 0)
}
