// Package ccc implements the cube-connected cycles of Preparata and
// Vuillemin [23], the paper's second "fast but large" baseline: the
// hypercube's corners replaced by cycles so every processor has
// degree 3, with the same Θ(N²/log² N) layout area as the PSN and the
// same Θ(N/log N) longest wires.
//
// The machine executes hypercube ASCEND/DESCEND programs with the
// standard CCC realization: the low log(log N)-ish dimensions live
// inside the cycles (rotation steps over constant-length wires), the
// high dimensions cross cube wires whose measured length — and hence,
// under Thompson's model, whose Θ(log N) delay — grows with the
// dimension. Bitonic sort is the Table I workload: Θ(log² N)
// compare steps, Θ(log³ N) bit-times under the log-delay model,
// Θ(log² N) under the constant-delay model of Table IV.
package ccc

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/vlsi"
)

// Machine is a simulated N-processor cube-connected cycles network.
type Machine struct {
	// N is the number of processors (a power of two here; the
	// canonical c·2^c sizes are a constant factor away and the
	// tables only use asymptotics).
	N int
	// Cfg is the word width and delay model.
	Cfg vlsi.Config

	m int // log2 N
	// cyc is the number of low dimensions realized inside cycles.
	cyc int
	// rotHop is one cycle-rotation step (constant-length wires).
	rotHop vlsi.Time
}

// New builds an N-processor CCC. N must be a power of two ≥ 2.
func New(n int, cfg vlsi.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !vlsi.IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("ccc: %d processors; want a power of two ≥ 2", n)
	}
	m := vlsi.Log2Floor(n)
	cyc := vlsi.Log2Ceil(m)
	if cyc > m {
		cyc = m
	}
	return &Machine{
		N:      n,
		Cfg:    cfg,
		m:      m,
		cyc:    cyc,
		rotHop: cfg.WireTransit(2),
	}, nil
}

// Area returns the chip area under the cited layout.
func (c *Machine) Area() vlsi.Area { return layout.CCCArea(c.N, c.Cfg.WordBits) }

// DimTime is the communication cost of one compare-exchange along
// hypercube dimension d: a rotation inside the cycle for the low
// dimensions, a cube wire of measured length for the high ones.
func (c *Machine) DimTime(d int) vlsi.Time {
	if d < c.cyc {
		// Reaching the right cycle position costs up to 2^d
		// rotation steps (cut-through: one hop latency per step plus
		// the word).
		return vlsi.Time(1<<uint(d))*c.Cfg.Model.FirstBit(2) + vlsi.Time(c.Cfg.WordBits)
	}
	return c.Cfg.WireTransit(layout.CCCDimWire(c.N, d-c.cyc))
}

// BitonicSort sorts N values by Batcher's bitonic network run as a
// DESCEND program per merge stage. It returns the sorted values and
// the completion time.
func (c *Machine) BitonicSort(xs []int64, rel vlsi.Time) ([]int64, vlsi.Time) {
	if len(xs) != c.N {
		panic(fmt.Sprintf("ccc: %d values on %d processors", len(xs), c.N))
	}
	vals := append([]int64(nil), xs...)
	t := rel
	cmp := vlsi.Time(c.Cfg.WordBits)
	for s := 1; s <= c.m; s++ {
		for d := s - 1; d >= 0; d-- {
			stride := 1 << uint(d)
			size := 1 << uint(s)
			for i := 0; i < c.N; i++ {
				if i&stride != 0 {
					continue
				}
				asc := i&size == 0
				a, b := vals[i], vals[i+stride]
				if (asc && a > b) || (!asc && a < b) {
					vals[i], vals[i+stride] = b, a
				}
			}
			t += c.DimTime(d) + cmp
		}
	}
	return vals, t
}

// AscendSteps returns the communication time of one full ASCEND (or
// DESCEND) sweep over all dimensions — the primitive Preparata and
// Vuillemin build every CCC algorithm from.
func (c *Machine) AscendSteps() vlsi.Time {
	var t vlsi.Time
	for d := 0; d < c.m; d++ {
		t += c.DimTime(d)
	}
	return t
}
