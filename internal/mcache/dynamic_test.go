package mcache

import (
	"reflect"
	"testing"

	"repro/internal/algorithms/sorting"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/resilience"
	"repro/internal/vlsi"
	wl "repro/internal/workload"
)

// superviseThroughRecovery drives m through a supervised SORT-OTN
// whose schedule delivers a mid-run dead edge, so the live plan
// mutates (MergeFaults) and at least one recovery runs.
func superviseThroughRecovery(t *testing.T, m *core.Machine) {
	t.Helper()
	xs := wl.NewRNG(3).Perm(m.K)
	prog, _, err := resilience.SortProgram(m, xs)
	if err != nil {
		t.Fatal(err)
	}
	sched := fault.NewSchedule(7).Add(1, fault.Site{Row: true, Tree: 1, Node: 2}).Sort()
	if _, err := resilience.Run(m, sched, prog, 0, resilience.Options{}); err != nil {
		t.Fatalf("supervised sort did not recover: %v", err)
	}
	if !m.FaultsMutated() {
		t.Fatal("schedule delivered but plan not marked mutated")
	}
}

// TestReturnDropsDynamicallyFaultedMachine pins the cache policy for
// the recovery supervisor: a machine whose fault plan mutated mid-run
// is dropped on Return, never parked.
func TestReturnDropsDynamicallyFaultedMachine(t *testing.T) {
	c := New()
	m, err := c.Checkout(testKey(), buildOTN)
	if err != nil {
		t.Fatal(err)
	}
	superviseThroughRecovery(t, m)
	c.Return(testKey(), m)
	if got := c.Idle(testKey()); got != 0 {
		t.Fatalf("dynamically-faulted machine parked (%d idle)", got)
	}
	if s := c.Stats(); s.Drops != 1 || s.Returns != 0 {
		t.Fatalf("stats = %+v, want exactly one drop and no returns", s)
	}
}

// TestRecycleInvalidatesCompiledRoutePlans pins the plan-cache
// invalidation contract of the compiled-routing layer (PR 5) at the
// machine-cache boundary: a workload compiles routing schedules; a
// mid-run fault mutation then a Recycle must drop every one of them
// (a schedule recorded under the old fault view must never replay on
// the next tenant); and the recycled machine must recompile fresh
// plans while staying bit-identical to a fresh build.
func TestRecycleInvalidatesCompiledRoutePlans(t *testing.T) {
	m, err := buildOTN()
	if err != nil {
		t.Fatal(err)
	}
	xs := wl.NewRNG(5).Perm(testK)
	sorting.SortOTN(m, append([]int64(nil), xs...), 0)
	m.Reset() // freeze the recorded schedules into plans
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	if m.RoutePlansCompiled() == 0 {
		t.Fatal("healthy sort compiled no route plans")
	}

	// Mutate the fault plan mid-run (the supervisor's MergeFaults) so
	// any surviving schedule would now describe the wrong machine.
	superviseThroughRecovery(t, m)
	m.Recycle()
	if got := m.RoutePlansCompiled(); got != 0 {
		t.Fatalf("Recycle left %d compiled route plans attached", got)
	}

	// The recycled machine must recompile and match a fresh build
	// bit-for-bit — replaying a stale plan would shift times or values.
	fresh, err := buildOTN()
	if err != nil {
		t.Fatal(err)
	}
	gotOut, gotDone := sorting.SortOTN(m, append([]int64(nil), xs...), 0)
	wantOut, wantDone := sorting.SortOTN(fresh, append([]int64(nil), xs...), 0)
	if m.Err() != nil || fresh.Err() != nil {
		t.Fatalf("errs: recycled %v, fresh %v", m.Err(), fresh.Err())
	}
	if gotDone != wantDone || !reflect.DeepEqual(gotOut, wantOut) {
		t.Fatalf("recycled run diverged: done %v vs %v", gotDone, wantDone)
	}
	m.Reset()
	if m.RoutePlansCompiled() == 0 {
		t.Fatal("recycled machine did not recompile route plans")
	}
}

// TestRecycledPostRecoveryMachineMatchesFresh is the scrub proof the
// drop policy leans on: even after a full mid-run recovery (merged
// plan, rollbacks, healed failures), an explicit Recycle restores a
// machine that runs a workload bit-identically to a fresh build. If
// this ever regresses, Return's drop is what keeps the cache sound.
func TestRecycledPostRecoveryMachineMatchesFresh(t *testing.T) {
	recycled, err := buildOTN()
	if err != nil {
		t.Fatal(err)
	}
	superviseThroughRecovery(t, recycled)
	recycled.Recycle()
	if recycled.FaultsMutated() {
		t.Fatal("Recycle left the dynamic-plan mark set")
	}
	if recycled.Faulty() || recycled.Health() != nil {
		t.Fatal("Recycle left fault state attached")
	}

	fresh, err := buildOTN()
	if err != nil {
		t.Fatal(err)
	}
	xs := wl.NewRNG(11).Perm(testK)
	gotOut, gotDone := sorting.SortOTN(recycled, append([]int64(nil), xs...), 0)
	wantOut, wantDone := sorting.SortOTN(fresh, append([]int64(nil), xs...), 0)
	if recycled.Err() != nil || fresh.Err() != nil {
		t.Fatalf("errs: recycled %v, fresh %v", recycled.Err(), fresh.Err())
	}
	if gotDone != wantDone {
		t.Fatalf("recycled finished at %v, fresh at %v", gotDone, wantDone)
	}
	if !reflect.DeepEqual(gotOut, wantOut) {
		t.Fatalf("recycled output %v, fresh %v", gotOut, wantOut)
	}
	var _ vlsi.Time = gotDone
}
