package mcache

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestBoundedCheckoutBlocksUntilReturn pins the capacity semantics: a
// second checkout on a full key waits, and a Return hands its machine
// straight over.
func TestBoundedCheckoutBlocksUntilReturn(t *testing.T) {
	c := NewWithCapacity(1)
	m1, err := c.CheckoutContext(context.Background(), testKey(), buildOTN)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	var m2ok atomic.Bool
	go func() {
		m2, err := c.CheckoutContext(context.Background(), testKey(), buildOTN)
		if err == nil && m2 == m1 {
			m2ok.Store(true)
			c.Return(testKey(), m2)
		}
		got <- err
	}()
	// The waiter must be blocked, not building a second machine.
	time.Sleep(20 * time.Millisecond)
	if s := c.Stats(); s.Misses != 1 {
		t.Fatalf("bounded cache built %d machines, want 1", s.Misses)
	}
	c.Return(testKey(), m1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if !m2ok.Load() {
		t.Fatal("waiter did not receive the returned machine by handoff")
	}
	if s := c.Stats(); s.Waits != 1 {
		t.Fatalf("Waits = %d, want 1", s.Waits)
	}
	if out := c.Outstanding(testKey()); out != 0 {
		t.Fatalf("outstanding = %d after all returns", out)
	}
}

// TestCheckoutContextCancelledWhileEmpty pins the satellite contract:
// cancelling a checkout that is blocked on an empty, at-capacity key
// returns ctx.Err() promptly, leaks no goroutine, and loses no
// capacity slot — the slot is immediately usable by the next caller.
func TestCheckoutContextCancelledWhileEmpty(t *testing.T) {
	c := NewWithCapacity(1)
	m, err := c.CheckoutContext(context.Background(), testKey(), buildOTN)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.CheckoutContext(ctx, testKey(), buildOTN)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled checkout returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled checkout never returned")
	}
	waitGoroutines(t, before)

	// No lost slot: returning the original machine must let a fresh
	// bounded checkout succeed immediately.
	c.Return(testKey(), m)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	m2, err := c.CheckoutContext(ctx2, testKey(), buildOTN)
	if err != nil {
		t.Fatalf("slot lost after cancellation: %v", err)
	}
	c.Return(testKey(), m2)
}

// TestBoundedCheckoutStress hammers a capacity-2 key from many
// goroutines under -race: random checkout/run/return cycles with a
// fraction of aggressively-timed cancellations racing the handoffs.
// Afterwards every machine and every slot must be accounted for.
func TestBoundedCheckoutStress(t *testing.T) {
	const cap, goroutines, iters = 2, 16, 30
	c := NewWithCapacity(cap)
	before := runtime.NumGoroutine()
	var cancelled, served atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// A third of the attempts carry a tiny deadline that
				// often fires mid-wait, racing Return's handoff.
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if (g+i)%3 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*time.Millisecond)
				}
				m, err := c.CheckoutContext(ctx, testKey(), buildOTN)
				cancel()
				if err != nil {
					cancelled.Add(1)
					continue
				}
				if _, _, werr := workload(m); werr != nil {
					t.Errorf("workload: %v", werr)
				}
				served.Add(1)
				c.Return(testKey(), m)
			}
		}(g)
	}
	wg.Wait()

	if out := c.Outstanding(testKey()); out != 0 {
		t.Fatalf("outstanding = %d after every goroutine returned", out)
	}
	if idle := c.Idle(testKey()); idle > cap {
		t.Fatalf("idle = %d machines parked, capacity %d — a slot leaked", idle, cap)
	}
	if s := c.Stats(); s.Misses > cap {
		t.Fatalf("built %d machines on a capacity-%d key", s.Misses, cap)
	}
	if served.Load() == 0 {
		t.Fatal("stress served no checkouts at all")
	}
	waitGoroutines(t, before)

	// The cache must still be fully live: capacity-many concurrent
	// checkouts all succeed.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m1, err1 := c.CheckoutContext(ctx, testKey(), buildOTN)
	m2, err2 := c.CheckoutContext(ctx, testKey(), buildOTN)
	if err1 != nil || err2 != nil {
		t.Fatalf("post-stress checkouts failed: %v, %v", err1, err2)
	}
	c.Return(testKey(), m1)
	c.Return(testKey(), m2)
}

// TestCancelledBeforeWaitReturnsImmediately: an already-dead context
// never checks out, even when a machine is idle.
func TestCancelledBeforeWaitReturnsImmediately(t *testing.T) {
	c := NewWithCapacity(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CheckoutContext(ctx, testKey(), buildOTN); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if s := c.Stats(); s.Misses != 0 {
		t.Fatalf("dead-context checkout built a machine")
	}
}

// TestBuildFailureFreesSlot: a failed build releases its reserved
// capacity slot to the next waiter instead of wedging the key.
func TestBuildFailureFreesSlot(t *testing.T) {
	c := NewWithCapacity(1)
	boom := errors.New("boom")
	failing := func() (*core.Machine, error) { return nil, boom }
	if _, err := c.CheckoutContext(context.Background(), testKey(), failing); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the build error", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	m, err := c.CheckoutContext(ctx, testKey(), buildOTN)
	if err != nil {
		t.Fatalf("slot not freed after build failure: %v", err)
	}
	c.Return(testKey(), m)
}

// waitGoroutines polls until the goroutine count returns to (at most)
// its baseline, failing after a grace period — the leak check the
// server's drain test reuses.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}
