// Package mcache caches constructed simulation machines by topology
// key. Building a core.Machine is the expensive part of a sweep cell:
// layout measurement, 2K router constructions, per-tree delay tables
// and scratch arenas. Everything a workload then mutates — registers,
// edge occupancy, fault views, the sticky error — is cheap to scrub
// in place (core.Machine.Recycle). The cache exploits that split:
// analysis sweeps check out a machine per (network, size, cycle
// length, config) cell, run, and return it scrubbed, so construction
// cost is paid once per distinct topology per process instead of once
// per cell, and repeated sweeps (cmd/otbench re-runs whole tables per
// benchmark iteration) run allocation-lean.
//
// Ownership protocol: a checked-out machine is exclusively the
// caller's — fault plans, register writes and tracer attachments
// mutate the checked-out copy only. The cache retains no template; it
// holds only idle machines, each recycled to as-constructed state on
// Return, so a cache hit is observationally identical to a fresh
// construction (the determinism tests of internal/analysis pin this
// across cache reuse).
package mcache

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/vlsi"
)

// Key identifies one machine construction recipe. Two equal keys must
// describe bit-identical constructions: the network kind, the logical
// base side, the OTC cycle length (0 where the network has none), and
// the vlsi configuration (word width + delay model, by name — models
// are stateless).
type Key struct {
	Network  string
	K        int
	CycleLen int
	WordBits int
	Model    string
}

// OTNKey is the key of core.New(k, cfg).
func OTNKey(k int, cfg vlsi.Config) Key {
	return Key{Network: "otn", K: k, WordBits: cfg.WordBits, Model: cfg.Model.Name()}
}

// ScaledOTNKey is the key of core.NewScaled(k, cfg).
func ScaledOTNKey(k int, cfg vlsi.Config) Key {
	return Key{Network: "otn-scaled", K: k, WordBits: cfg.WordBits, Model: cfg.Model.Name()}
}

// EmulatedOTNKey is the key of otc.NewEmulatedOTN(k, l, cfg).
func EmulatedOTNKey(k, l int, cfg vlsi.Config) Key {
	return Key{Network: "otc-emulated", K: k, CycleLen: l, WordBits: cfg.WordBits, Model: cfg.Model.Name()}
}

// PackedOTNKey is the key of packed.New(k, cfg): the machine-free
// bit-packed Boolean engine over the measured (k×k)-OTN shape. Packed
// engines are not core.Machines, so they never enter a Cache's free
// list; the key exists so the packed engine cache, the server's job
// classes and the analysis sweeps all name packed shapes one way.
func PackedOTNKey(k int, cfg vlsi.Config) Key {
	return Key{Network: "otn-packed", K: k, WordBits: cfg.WordBits, Model: cfg.Model.Name()}
}

// PackedScaledOTNKey is the key of packed.NewScaled(k, cfg).
func PackedScaledOTNKey(k int, cfg vlsi.Config) Key {
	return Key{Network: "otn-scaled-packed", K: k, WordBits: cfg.WordBits, Model: cfg.Model.Name()}
}

// Stats counts cache traffic.
type Stats struct {
	Hits    int // checkouts served from the free list (or a direct Return handoff)
	Misses  int // checkouts that had to build
	Waits   int // checkouts that blocked on the per-key capacity bound
	Returns int // machines recycled back into the free list (or handed to a waiter)
	Drops   int // returned machines discarded (sticky error / mutated fault plan)
}

// Cache is a thread-safe free list of idle machines per key. The zero
// value is not usable; call New or NewWithCapacity.
type Cache struct {
	mu    sync.Mutex
	free  map[Key][]*core.Machine
	stats Stats

	// capacity bounds, per key, the number of machines checked out at
	// once; 0 means unbounded (Checkout never blocks). With a bound,
	// CheckoutContext blocks when the key is at capacity with no idle
	// machine, until a Return frees one or the context is cancelled.
	// The free-list-first discipline keeps out+idle ≤ capacity per key.
	capacity int
	out      map[Key]int
	waiters  map[Key][]*waiter
}

// waiter is one blocked CheckoutContext. Its channel (buffered, so a
// handoff never blocks the returner) receives either a recycled
// machine — ownership transfers directly, bypassing the free list —
// or nil, a "slot freed, retry" token sent when a drop or build
// failure lowers the outstanding count.
type waiter struct {
	ch chan *core.Machine
}

// New returns an empty, unbounded cache: checkouts never block, and
// concurrent misses on one key each build.
func New() *Cache { return NewWithCapacity(0) }

// NewWithCapacity returns an empty cache that allows at most perKey
// machines of each key to be checked out at once (0 = unbounded).
// Long-running services bound their machine memory this way: the
// (k×k)-OTN construction is the expensive, large object, and the
// bound turns "build another" into "wait for a tenant to finish".
func NewWithCapacity(perKey int) *Cache {
	return &Cache{
		free:     make(map[Key][]*core.Machine),
		capacity: perKey,
		out:      make(map[Key]int),
		waiters:  make(map[Key][]*waiter),
	}
}

// Checkout hands out an idle machine for key, building one with build
// on a miss. On an unbounded cache it never blocks; on a bounded one
// it waits indefinitely for capacity (use CheckoutContext to bound
// the wait).
func (c *Cache) Checkout(key Key, build func() (*core.Machine, error)) (*core.Machine, error) {
	return c.CheckoutContext(context.Background(), key, build)
}

// CheckoutContext is Checkout under a context: if the key is at its
// capacity bound with nothing idle, the call blocks until a Return
// hands a machine over, a drop frees a build slot, or ctx is
// cancelled. Cancellation is loss-free: a machine handed to a waiter
// that just gave up is parked back in the free list, and a freed slot
// is passed to the next waiter — no goroutine, machine or capacity
// slot leaks (the stress tests in this package pin all three).
func (c *Cache) CheckoutContext(ctx context.Context, key Key, build func() (*core.Machine, error)) (*core.Machine, error) {
	waited := false
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		if list := c.free[key]; len(list) > 0 {
			m := list[len(list)-1]
			list[len(list)-1] = nil
			c.free[key] = list[:len(list)-1]
			c.out[key]++
			c.stats.Hits++
			c.mu.Unlock()
			return m, nil
		}
		if c.capacity == 0 || c.out[key] < c.capacity {
			c.out[key]++
			c.stats.Misses++
			c.mu.Unlock()
			m, err := build()
			if err != nil {
				// The reserved slot frees; pass it on so a blocked
				// checkout can try its own build.
				c.mu.Lock()
				c.out[key]--
				c.wakeLocked(key)
				c.mu.Unlock()
				return nil, err
			}
			return m, nil
		}
		w := &waiter{ch: make(chan *core.Machine, 1)}
		c.waiters[key] = append(c.waiters[key], w)
		if !waited {
			waited = true
			c.stats.Waits++
		}
		c.mu.Unlock()
		select {
		case m := <-w.ch:
			if m != nil {
				return m, nil // direct handoff; out is unchanged by design
			}
			// Slot token: retry from the top (another goroutine may
			// have taken the slot first — that is fairness, not loss).
		case <-ctx.Done():
			c.mu.Lock()
			removed := c.removeWaiterLocked(key, w)
			c.mu.Unlock()
			if !removed {
				// A handoff raced the cancellation: the channel holds
				// a machine or a slot token. Recover it so nothing is
				// lost — the machine goes back through Return, the
				// token wakes the next waiter.
				if m := <-w.ch; m != nil {
					c.Return(key, m)
				} else {
					c.mu.Lock()
					c.wakeLocked(key)
					c.mu.Unlock()
				}
			}
			return nil, ctx.Err()
		}
	}
}

// wakeLocked passes a freed capacity slot to the oldest waiter (as a
// nil token — the waiter re-runs the checkout protocol). Callers hold
// c.mu.
func (c *Cache) wakeLocked(key Key) {
	ws := c.waiters[key]
	if len(ws) == 0 {
		return
	}
	w := ws[0]
	ws[0] = nil
	c.waiters[key] = ws[1:]
	w.ch <- nil
}

// removeWaiterLocked unregisters w; false means a handoff already
// popped it (its channel holds the goods). Callers hold c.mu.
func (c *Cache) removeWaiterLocked(key Key, w *waiter) bool {
	ws := c.waiters[key]
	for i := range ws {
		if ws[i] == w {
			copy(ws[i:], ws[i+1:])
			ws[len(ws)-1] = nil
			c.waiters[key] = ws[:len(ws)-1]
			return true
		}
	}
	return false
}

// Return recycles m to as-constructed state and parks it for the next
// Checkout of key. A machine still carrying a sticky error is dropped
// instead — the error says its last run went somewhere the recycle
// contract was not written for, and rebuilding is cheap insurance.
// A machine whose fault plan mutated mid-run (the recovery
// supervisor's MergeFaults) is dropped for the same reason: its fault
// history is no longer the one injected at checkout, so rather than
// proving the dynamic state scrubbed we decline to park it (the
// recycled-equals-fresh test in this package documents that a scrub
// would in fact be clean — the drop is policy, not necessity).
// Return accepts nil (from error paths) as a no-op.
func (c *Cache) Return(key Key, m *core.Machine) {
	if m == nil {
		return
	}
	if m.Err() != nil || m.FaultsMutated() {
		c.mu.Lock()
		c.stats.Drops++
		c.out[key]--
		c.wakeLocked(key) // the freed slot lets a blocked checkout build
		c.mu.Unlock()
		return
	}
	m.Recycle()
	c.mu.Lock()
	if ws := c.waiters[key]; len(ws) > 0 {
		// Hand the machine straight to the oldest waiter: ownership
		// transfers without touching the free list or the outstanding
		// count (one holder swapped for another).
		w := ws[0]
		ws[0] = nil
		c.waiters[key] = ws[1:]
		c.stats.Returns++
		c.stats.Hits++
		c.mu.Unlock()
		w.ch <- m
		return
	}
	c.free[key] = append(c.free[key], m)
	c.out[key]--
	c.stats.Returns++
	c.mu.Unlock()
}

// Outstanding returns how many machines of key are checked out (test
// and metrics introspection; meaningful on bounded caches, where
// every checkout and return updates the count).
func (c *Cache) Outstanding(key Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.out[key]
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Idle returns how many machines are parked for key.
func (c *Cache) Idle(key Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.free[key])
}

// Flush discards every idle machine (the stats survive).
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.free = make(map[Key][]*core.Machine)
}
