// Package mcache caches constructed simulation machines by topology
// key. Building a core.Machine is the expensive part of a sweep cell:
// layout measurement, 2K router constructions, per-tree delay tables
// and scratch arenas. Everything a workload then mutates — registers,
// edge occupancy, fault views, the sticky error — is cheap to scrub
// in place (core.Machine.Recycle). The cache exploits that split:
// analysis sweeps check out a machine per (network, size, cycle
// length, config) cell, run, and return it scrubbed, so construction
// cost is paid once per distinct topology per process instead of once
// per cell, and repeated sweeps (cmd/otbench re-runs whole tables per
// benchmark iteration) run allocation-lean.
//
// Ownership protocol: a checked-out machine is exclusively the
// caller's — fault plans, register writes and tracer attachments
// mutate the checked-out copy only. The cache retains no template; it
// holds only idle machines, each recycled to as-constructed state on
// Return, so a cache hit is observationally identical to a fresh
// construction (the determinism tests of internal/analysis pin this
// across cache reuse).
package mcache

import (
	"sync"

	"repro/internal/core"
	"repro/internal/vlsi"
)

// Key identifies one machine construction recipe. Two equal keys must
// describe bit-identical constructions: the network kind, the logical
// base side, the OTC cycle length (0 where the network has none), and
// the vlsi configuration (word width + delay model, by name — models
// are stateless).
type Key struct {
	Network  string
	K        int
	CycleLen int
	WordBits int
	Model    string
}

// OTNKey is the key of core.New(k, cfg).
func OTNKey(k int, cfg vlsi.Config) Key {
	return Key{Network: "otn", K: k, WordBits: cfg.WordBits, Model: cfg.Model.Name()}
}

// ScaledOTNKey is the key of core.NewScaled(k, cfg).
func ScaledOTNKey(k int, cfg vlsi.Config) Key {
	return Key{Network: "otn-scaled", K: k, WordBits: cfg.WordBits, Model: cfg.Model.Name()}
}

// EmulatedOTNKey is the key of otc.NewEmulatedOTN(k, l, cfg).
func EmulatedOTNKey(k, l int, cfg vlsi.Config) Key {
	return Key{Network: "otc-emulated", K: k, CycleLen: l, WordBits: cfg.WordBits, Model: cfg.Model.Name()}
}

// Stats counts cache traffic.
type Stats struct {
	Hits    int // checkouts served from the free list
	Misses  int // checkouts that had to build
	Returns int // machines recycled back into the free list
	Drops   int // returned machines discarded (sticky error)
}

// Cache is a thread-safe free list of idle machines per key. The zero
// value is not usable; call New.
type Cache struct {
	mu    sync.Mutex
	free  map[Key][]*core.Machine
	stats Stats
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{free: make(map[Key][]*core.Machine)}
}

// Checkout hands out an idle machine for key, building one with build
// on a miss. Concurrent misses on the same key each build (outside
// the cache lock); both machines enter the free list when returned.
func (c *Cache) Checkout(key Key, build func() (*core.Machine, error)) (*core.Machine, error) {
	c.mu.Lock()
	if list := c.free[key]; len(list) > 0 {
		m := list[len(list)-1]
		list[len(list)-1] = nil
		c.free[key] = list[:len(list)-1]
		c.stats.Hits++
		c.mu.Unlock()
		return m, nil
	}
	c.stats.Misses++
	c.mu.Unlock()
	return build()
}

// Return recycles m to as-constructed state and parks it for the next
// Checkout of key. A machine still carrying a sticky error is dropped
// instead — the error says its last run went somewhere the recycle
// contract was not written for, and rebuilding is cheap insurance.
// A machine whose fault plan mutated mid-run (the recovery
// supervisor's MergeFaults) is dropped for the same reason: its fault
// history is no longer the one injected at checkout, so rather than
// proving the dynamic state scrubbed we decline to park it (the
// recycled-equals-fresh test in this package documents that a scrub
// would in fact be clean — the drop is policy, not necessity).
// Return accepts nil (from error paths) as a no-op.
func (c *Cache) Return(key Key, m *core.Machine) {
	if m == nil {
		return
	}
	if m.Err() != nil || m.FaultsMutated() {
		c.mu.Lock()
		c.stats.Drops++
		c.mu.Unlock()
		return
	}
	m.Recycle()
	c.mu.Lock()
	c.free[key] = append(c.free[key], m)
	c.stats.Returns++
	c.mu.Unlock()
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Idle returns how many machines are parked for key.
func (c *Cache) Idle(key Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.free[key])
}

// Flush discards every idle machine (the stats survive).
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.free = make(map[Key][]*core.Machine)
}
