package mcache

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/vlsi"
)

const testK = 16

func testKey() Key { return OTNKey(testK, vlsi.DefaultConfig(testK*testK)) }

func buildOTN() (*core.Machine, error) {
	return core.New(testK, vlsi.DefaultConfig(testK*testK))
}

// workload runs a small program and reports its completion time and
// an output word — enough state to witness any recycle leak.
func workload(m *core.Machine) (vlsi.Time, int64, error) {
	m.Reset()
	for i := 0; i < m.K; i++ {
		m.SetRowRoot(i, int64(i*3+1))
	}
	done := m.ParDo(true, 0, func(v core.Vector, rel vlsi.Time) vlsi.Time {
		return m.RootToLeaf(v, nil, core.RegA, rel)
	})
	done = m.ParDo(false, done, func(v core.Vector, rel vlsi.Time) vlsi.Time {
		return m.LeafToLeaf(v, core.One(v.Index), core.RegA, nil, core.RegB, rel)
	})
	done = m.CountLeafToRoot(core.Row(2), core.RegFlag, done)
	return done, m.ColRoot(3), m.Err()
}

func TestCheckoutBuildsThenReuses(t *testing.T) {
	c := New()
	m1, err := c.Checkout(testKey(), buildOTN)
	if err != nil {
		t.Fatal(err)
	}
	c.Return(testKey(), m1)
	m2, err := c.Checkout(testKey(), buildOTN)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("second checkout did not reuse the returned machine")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Returns != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 return", s)
	}
	if c.Idle(testKey()) != 0 {
		t.Fatalf("idle = %d after checkout, want 0", c.Idle(testKey()))
	}
}

// A machine that ran a faulted, register-dirty workload and was
// returned must behave exactly like a fresh construction on its next
// checkout: same times, same outputs, no fault residue.
func TestRecycledMachineMatchesFresh(t *testing.T) {
	fresh, err := buildOTN()
	if err != nil {
		t.Fatal(err)
	}
	wantDone, wantWord, werr := workload(fresh)
	if werr != nil {
		t.Fatal(werr)
	}

	c := New()
	m, err := c.Checkout(testKey(), buildOTN)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty run: fault plan attached, registers and roots scribbled.
	if err := m.InjectFaults(fault.New(3).KillEdge(true, 1, 9).StickBP(2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := workload(m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.K; i++ {
		m.SetColRoot(i, -77)
	}
	c.Return(testKey(), m)

	got, err := c.Checkout(testKey(), buildOTN)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatal("checkout did not reuse the recycled machine")
	}
	if got.Faulty() {
		t.Fatal("recycled machine still faulty")
	}
	gotDone, gotWord, gerr := workload(got)
	if gerr != nil {
		t.Fatal(gerr)
	}
	if gotDone != wantDone || gotWord != wantWord {
		t.Fatalf("recycled run = (%d, %d), fresh run = (%d, %d)", gotDone, gotWord, wantDone, wantWord)
	}
}

// Machines returned with a sticky error are dropped, not reused.
func TestReturnDropsErroredMachine(t *testing.T) {
	c := New()
	m, err := c.Checkout(testKey(), buildOTN)
	if err != nil {
		t.Fatal(err)
	}
	m.LeafToRoot(core.Row(0), core.None, core.RegA, 0) // selector error
	if m.Err() == nil {
		t.Fatal("expected a sticky error")
	}
	c.Return(testKey(), m)
	if s := c.Stats(); s.Drops != 1 || s.Returns != 0 {
		t.Fatalf("stats = %+v, want 1 drop / 0 returns", s)
	}
	if c.Idle(testKey()) != 0 {
		t.Fatal("errored machine entered the free list")
	}
}

// The cache is safe under the concurrent checkout/return traffic of
// parallel analysis cells (run under -race by make race).
func TestConcurrentCheckoutReturn(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 5; n++ {
				m, err := c.Checkout(testKey(), buildOTN)
				if err != nil {
					t.Error(err)
					return
				}
				if _, _, err := workload(m); err != nil {
					t.Error(err)
					return
				}
				c.Return(testKey(), m)
			}
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != 40 || s.Returns != 40 {
		t.Fatalf("stats = %+v, want 40 checkouts and 40 returns", s)
	}
}

// The checkout hit path allocates nothing: a sweep re-checking out a
// cached machine pays map lookup and recycle, not construction.
func TestCheckoutHitAllocationFree(t *testing.T) {
	c := New()
	m, err := c.Checkout(testKey(), buildOTN)
	if err != nil {
		t.Fatal(err)
	}
	c.Return(testKey(), m)
	key := testKey()
	if got := testing.AllocsPerRun(100, func() {
		m, _ := c.Checkout(key, buildOTN)
		c.Return(key, m)
	}); got > 0 {
		t.Errorf("checkout/return hit path: %.1f allocs/op, want 0", got)
	}
}
