package mot3d

import (
	"testing"
	"testing/quick"

	"repro/internal/algorithms/matrix"
	"repro/internal/vlsi"
	"repro/internal/workload"
)

func machine(t testing.TB, n int) *Machine {
	t.Helper()
	m, err := New(n, vlsi.DefaultConfig(n*n*n))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, vlsi.DefaultConfig(27)); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := New(4, vlsi.Config{}); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := Measure(4, 0); err == nil {
		t.Error("zero word width accepted")
	}
}

func TestRegisters(t *testing.T) {
	m := machine(t, 4)
	m.Set("X", 1, 2, 3, 99)
	if m.Get("X", 1, 2, 3) != 99 {
		t.Error("register write lost")
	}
	if m.Get("X", 3, 2, 1) != 0 {
		t.Error("register aliasing across coordinates")
	}
}

func TestMatMul(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		m := machine(t, n)
		rng := workload.NewRNG(uint64(n) + 41)
		a := rng.IntMatrix(n, 30)
		b := rng.IntMatrix(n, 30)
		c, done := m.MatMul(a, b, false, 0)
		want := matrix.RefMatMul(a, b)
		for i := range want {
			for j := range want[i] {
				if c[i][j] != want[i][j] {
					t.Fatalf("n=%d: C[%d][%d] = %d, want %d", n, i, j, c[i][j], want[i][j])
				}
			}
		}
		if done <= 0 {
			t.Error("matmul took no time")
		}
	}
}

func TestMatMulBoolean(t *testing.T) {
	n := 8
	m := machine(t, n)
	rng := workload.NewRNG(17)
	a := rng.BoolMatrix(n, 0.3)
	b := rng.BoolMatrix(n, 0.3)
	c, _ := m.MatMul(a, b, true, 0)
	want := matrix.RefBoolMatMul(a, b)
	for i := range want {
		for j := range want[i] {
			if c[i][j] != want[i][j] {
				t.Fatalf("bool C[%d][%d] = %d, want %d", i, j, c[i][j], want[i][j])
			}
		}
	}
}

func TestMatMulQuick(t *testing.T) {
	m := machine(t, 4)
	f := func(seed uint64) bool {
		rng := workload.NewRNG(seed)
		a := rng.IntMatrix(4, 9)
		b := rng.IntMatrix(4, 9)
		m.Reset()
		c, _ := m.MatMul(a, b, false, 0)
		want := matrix.RefMatMul(a, b)
		for i := range want {
			for j := range want[i] {
				if c[i][j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestAreaShape: the embedding is Θ(N⁴).
func TestAreaShape(t *testing.T) {
	var ns, areas []float64
	for _, n := range []int{4, 8, 16, 32} {
		g, err := Measure(n, vlsi.WordBitsFor(n*n*n))
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, float64(n))
		areas = append(areas, float64(g.Area()))
	}
	e := vlsi.GrowthExponent(ns, areas)
	if e < 3.5 || e > 4.5 {
		t.Errorf("3D mesh-of-trees area grows as N^%.2f; want ≈4", e)
	}
}

// TestTimePolylog: matmul time is polylog in N (Θ(log² N)
// bit-serially; Leighton's Θ(log N) is word-parallel).
func TestTimePolylog(t *testing.T) {
	var logs, times []float64
	for _, n := range []int{2, 4, 8, 16} {
		m := machine(t, n)
		rng := workload.NewRNG(uint64(n))
		_, done := m.MatMul(rng.IntMatrix(n, 5), rng.IntMatrix(n, 5), false, 0)
		logs = append(logs, float64(vlsi.Log2Ceil(n)+1))
		times = append(times, float64(done))
	}
	e := vlsi.GrowthExponent(logs, times)
	if e < 0.5 || e > 3.0 {
		t.Errorf("3D matmul time grows as log^%.2f N; want polylog", e)
	}
	if times[len(times)-1] > 16*16*8 {
		t.Errorf("3D matmul at n=16 took %v bit-times; not polylog", times[len(times)-1])
	}
}

// TestFasterThanBigOTN: with no operand realignment, the 3D schedule
// beats the two-dimensional Table II arrangement on time for the same
// product.
func TestFasterThanBigOTN(t *testing.T) {
	n := 8
	rng := workload.NewRNG(3)
	a := rng.BoolMatrix(n, 0.4)
	b := rng.BoolMatrix(n, 0.4)
	m3 := machine(t, n)
	_, t3 := m3.MatMul(a, b, true, 0)
	m2, err := matrix.BigMachine(n, vlsi.LogDelay{})
	if err != nil {
		t.Fatal(err)
	}
	_, t2 := matrix.BigMatMul(m2, a, b, true, 0)
	if t3 >= t2 {
		t.Errorf("3D matmul (%d) not faster than 2D big-OTN (%d)", t3, t2)
	}
}
