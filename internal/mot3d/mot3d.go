// Package mot3d implements the three-dimensional mesh of trees —
// Leighton's generalization of the orthogonal trees network that the
// paper discusses at the end of Section VII-B: "Leighton describes an
// interesting network called the three-dimensional mesh of trees (a
// generalization of the OTN to three dimensions). Using this network,
// he is able to get an efficient A·T² bound for matrix multiplication
// (area = O(N⁴), time = O(log N), A·T² = O(N⁴ log² N))."
//
// The network is an N×N×N lattice of base processors in which every
// axis-parallel line of N processors forms the leaves of a complete
// binary tree (3N² trees in all). The standard two-dimensional
// embedding places the N² (i,j)-blocks in a grid with the k-lines
// inside each block, giving an Θ(N⁴) bounding box whose longest tree
// wires are Θ(N²) — so, under Thompson's model, a tree traversal
// costs Θ(log N) per edge and a full broadcast Θ(log² N) bit-serially
// (Leighton's Θ(log N) is for word-parallel links; the bit-serial
// factor is the same one the OTN pays).
//
// Matrix multiplication needs one broadcast along each of two axes, a
// local multiply, and a combining ascent along the third — no operand
// realignment at all, which is the structural advantage over the
// (N²×N²) two-dimensional arrangement of Table II.
package mot3d

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/tree"
	"repro/internal/vlsi"
)

// Geom is the measured geometry of the 2-D embedding of an N×N×N
// mesh of trees.
type Geom struct {
	N, WordBits int
	AreaVal     vlsi.Area
	// KTree spans the N leaves of one within-block line; IJTree the
	// N leaves of a cross-block line (i- and j-trees are congruent).
	KTree, IJTree *layout.TreeGeom
}

// Area returns the bounding-box area, Θ(N⁴).
func (g *Geom) Area() vlsi.Area { return g.AreaVal }

// Measure computes the embedding geometry without placing every
// component: blocks of N cells on an N×N block grid, channel tracks
// of Θ(log N) between cells and between blocks.
func Measure(n, wordBits int) (*Geom, error) {
	if !vlsi.IsPow2(n) {
		return nil, fmt.Errorf("mot3d: side %d is not a power of two", n)
	}
	if wordBits < 1 {
		return nil, fmt.Errorf("mot3d: word width %d", wordBits)
	}
	cellPitch := wordBits + 4
	blockPitch := n*cellPitch + wordBits + 2

	// k-tree: leaves 1 cell apart inside a block.
	kLeaves := make([]int, n)
	for i := range kLeaves {
		kLeaves[i] = i*cellPitch + cellPitch/2
	}
	_, kGeom := layoutEmbed(kLeaves, wordBits)

	// i/j-tree: leaves one block apart.
	ijLeaves := make([]int, n)
	for i := range ijLeaves {
		ijLeaves[i] = i*blockPitch + blockPitch/2
	}
	_, ijGeom := layoutEmbed(ijLeaves, wordBits)

	side := int64(n * blockPitch)
	return &Geom{
		N: n, WordBits: wordBits,
		AreaVal: vlsi.Area(side * side),
		KTree:   kGeom,
		IJTree:  ijGeom,
	}, nil
}

// layoutEmbed adapts the layout package's tree embedding.
func layoutEmbed(leaves []int, tracks int) ([]int, *layout.TreeGeom) {
	return layout.EmbedTree(leaves, tracks)
}

// Machine is a simulated N×N×N mesh of trees.
type Machine struct {
	// N is the lattice side.
	N int
	// Cfg is the word width and delay model.
	Cfg vlsi.Config
	// Geom is the measured embedding.
	Geom *Geom

	// iTrees[j*N+k] spans cells (·,j,k); jTrees[i*N+k] spans
	// (i,·,k); kTrees[i*N+j] spans (i,j,·).
	iTrees, jTrees, kTrees []*tree.Tree
	vals                   map[string][]int64
}

// New builds an N×N×N mesh of trees. N must be a power of two.
func New(n int, cfg vlsi.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom, err := Measure(n, cfg.WordBits)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		N: n, Cfg: cfg, Geom: geom,
		iTrees: make([]*tree.Tree, n*n),
		jTrees: make([]*tree.Tree, n*n),
		kTrees: make([]*tree.Tree, n*n),
		vals:   map[string][]int64{},
	}
	for t := 0; t < n*n; t++ {
		if m.iTrees[t], err = tree.New(geom.IJTree, cfg); err != nil {
			return nil, err
		}
		if m.jTrees[t], err = tree.New(geom.IJTree, cfg); err != nil {
			return nil, err
		}
		if m.kTrees[t], err = tree.New(geom.KTree, cfg); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Area returns the chip area, Θ(N⁴).
func (m *Machine) Area() vlsi.Area { return m.Geom.Area() }

// bank returns (allocating if needed) a register over all N³ cells.
func (m *Machine) bank(r string) []int64 {
	b, ok := m.vals[r]
	if !ok {
		b = make([]int64, m.N*m.N*m.N)
		m.vals[r] = b
	}
	return b
}

// idx linearizes a lattice coordinate.
func (m *Machine) idx(i, j, k int) int { return (i*m.N+j)*m.N + k }

// Get reads register r of cell (i, j, k).
func (m *Machine) Get(r string, i, j, k int) int64 { return m.bank(r)[m.idx(i, j, k)] }

// Set writes register r of cell (i, j, k).
func (m *Machine) Set(r string, i, j, k int, v int64) { m.bank(r)[m.idx(i, j, k)] = v }

// MatMul computes C = A·B (Boolean when boolean is set): A(i,k)
// enters at the roots of the j-trees, B(k,j) at the roots of the
// i-trees, the products form in the base, and the k-trees deliver
// C(i,j) at their roots — Leighton's schedule, three tree phases and
// one local multiply.
func (m *Machine) MatMul(a, b [][]int64, boolean bool, rel vlsi.Time) ([][]int64, vlsi.Time) {
	n := m.N
	if len(a) != n || len(b) != n {
		panic(fmt.Sprintf("mot3d: %d×%d product on an N=%d machine", len(a), len(b), n))
	}
	// Phase 1: A(i,k) along the j-axis.
	regA := m.bank("A")
	var t vlsi.Time
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			_, d := m.jTrees[i*n+k].Broadcast(rel)
			if d > t {
				t = d
			}
			for j := 0; j < n; j++ {
				regA[m.idx(i, j, k)] = a[i][k]
			}
		}
	}
	// Phase 2: B(k,j) along the i-axis.
	regB := m.bank("B")
	t2 := t
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			_, d := m.iTrees[j*n+k].Broadcast(t)
			if d > t2 {
				t2 = d
			}
			for i := 0; i < n; i++ {
				regB[m.idx(i, j, k)] = b[k][j]
			}
		}
	}
	t = t2
	// Phase 3: multiply everywhere.
	regC := m.bank("C")
	for idx := range regC {
		if boolean {
			if regA[idx] != 0 && regB[idx] != 0 {
				regC[idx] = 1
			} else {
				regC[idx] = 0
			}
		} else {
			regC[idx] = regA[idx] * regB[idx]
		}
	}
	t += vlsi.Time(2 * m.Cfg.WordBits)
	// Phase 4: combine along the k-axis.
	c := make([][]int64, n)
	t4 := t
	for i := 0; i < n; i++ {
		c[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			d := m.kTrees[i*n+j].ReduceUniform(t)
			if d > t4 {
				t4 = d
			}
			var s int64
			for k := 0; k < n; k++ {
				if boolean {
					if regC[m.idx(i, j, k)] != 0 {
						s = 1
					}
				} else {
					s += regC[m.idx(i, j, k)]
				}
			}
			c[i][j] = s
		}
	}
	return c, t4
}

// Reset clears all tree occupancy state.
func (m *Machine) Reset() {
	for t := 0; t < m.N*m.N; t++ {
		m.iTrees[t].Reset()
		m.jTrees[t].Reset()
		m.kTrees[t].Reset()
	}
}
